"""QVStore: the hierarchical, tile-coded Q-value store (§4.2.1).

Organization (Fig 5): one *vault* per program feature; each vault holds
``N`` *planes*, small tables indexed by a per-plane hash of the feature
value and by the action.  Retrieval:

    Q(φ_i, A) = Σ_planes  plane[idx_p(φ_i), A]          (Fig 5b)
    Q(S, A)   = max_i  Q(φ_i, A)                         (Eqn 3)

The max across vaults lets whichever feature correlates best with the
current pattern drive the decision; the per-plane sum is standard tile
coding.  SARSA updates apply the TD error to every plane of every vault
(the gradient of the sum), as the Pythia artifact does.

Two interchangeable implementations live here:

* :class:`QVStore` — the original pure-Python nested-list store.  Kept
  as the dependency-free fallback and as the reference the fast path is
  pinned against (``tests/test_hotpath_equivalence.py``).
* :class:`NumpyQVStore` — one preallocated ``float64`` table for the
  whole store, vectorized ``q_values`` over all actions at once,
  in-place SARSA updates, and a per-state Q-row cache invalidated by
  per-row version counters.  This is the simulator's hot path: the two
  implementations produce bit-identical Q-values by construction (same
  summation order, same update arithmetic).

:func:`make_qvstore` selects between them via
``PythiaConfig.qvstore_impl`` (``"auto"`` prefers NumPy when installed).
"""

from __future__ import annotations

from operator import itemgetter

from repro.core.config import PythiaConfig
from repro.core.tile_coding import plane_indices

try:  # NumPy is optional: the pure-Python store is a complete fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: State values as passed around by the agent: one int per feature.
StateValues = tuple[int, ...]

#: Bound on memoization dictionaries (feature-value index caches and the
#: per-state Q-row cache); caches are cleared wholesale when exceeded.
_CACHE_LIMIT = 65536


class Vault:
    """Q-value storage for one program feature.

    Plain nested lists, not numpy: lookups touch three 16-float rows per
    query and per-element Python arithmetic beats small-array numpy
    dispatch by a wide margin on the simulator's hot path.
    """

    def __init__(self, config: PythiaConfig) -> None:
        self._shifts = config.plane_shifts
        self._entries = config.plane_entries
        self._num_actions = config.num_actions
        init = config.initial_q / config.num_planes
        self._planes: list[list[list[float]]] = [
            [[init] * config.num_actions for _ in range(config.plane_entries)]
            for _ in range(config.num_planes)
        ]
        self._index_cache: dict[int, tuple[int, ...]] = {}

    def indices(self, value: int) -> tuple[int, ...]:
        """Plane row indices for a feature *value* (memoized)."""
        cached = self._index_cache.get(value)
        if cached is None:
            cached = plane_indices(value, self._shifts, self._entries)
            if len(self._index_cache) > _CACHE_LIMIT:
                self._index_cache.clear()
            self._index_cache[value] = cached
        return cached

    def q_row(self, value: int) -> list[float]:
        """Q(φ, A) for all actions: the sum of partial rows (Fig 5b)."""
        rows = [
            self._planes[p][i] for p, i in enumerate(self.indices(value))
        ]
        first = rows[0]
        total = list(first)
        for row in rows[1:]:
            for a in range(self._num_actions):
                total[a] += row[a]
        return total

    def update(self, value: int, action: int, step: float) -> None:
        """Apply a TD step to every plane's partial Q for (value, action)."""
        for p, i in enumerate(self.indices(value)):
            self._planes[p][i][action] += step

    @property
    def storage_entries(self) -> int:
        """Total Q-value entries held (Table 4 accounting)."""
        return len(self._planes) * self._entries * self._num_actions


class QVStore:
    """The full store: one vault per constituent feature (pure Python)."""

    def __init__(self, config: PythiaConfig) -> None:
        self.config = config
        self.vaults = [Vault(config) for _ in config.features]

    def q_values(self, state: StateValues) -> list[float]:
        """Q(S, A) for every action: max over vaults (Eqn 3)."""
        rows = [vault.q_row(v) for vault, v in zip(self.vaults, state)]
        best = rows[0]
        if len(rows) == 1:
            return best
        total = list(best)
        for row in rows[1:]:
            for a in range(len(total)):
                if row[a] > total[a]:
                    total[a] = row[a]
        return total

    def q_value(self, state: StateValues, action: int) -> float:
        """Q(S, A) for one action."""
        return self.q_values(state)[action]

    def best_action(self, state: StateValues) -> tuple[int, float]:
        """Action index with the maximum Q-value, and that value."""
        q = self.q_values(state)
        best_a = 0
        best_q = q[0]
        for a in range(1, len(q)):
            if q[a] > best_q:
                best_q = q[a]
                best_a = a
        return best_a, best_q

    def sarsa_update(
        self,
        state: StateValues,
        action: int,
        reward: float,
        next_state: StateValues,
        next_action: int,
    ) -> float:
        """One SARSA step (Eqn 1 / Algorithm 1 line 29); returns the TD error.

        The TD error is computed once from the state-level Q-values and
        applied (scaled by α) to every plane of every vault.
        """
        q_sa = self.q_value(state, action)
        q_next = self.q_value(next_state, next_action)
        td_error = reward + self.config.gamma * q_next - q_sa
        step = self.config.alpha * td_error
        for vault, value in zip(self.vaults, state):
            vault.update(value, action, step)
        return td_error

    @property
    def storage_entries(self) -> int:
        """Total Q-value entries across vaults (Table 4 accounting)."""
        return sum(v.storage_entries for v in self.vaults)


class _NumpyVault:
    """Per-feature view over a :class:`NumpyQVStore`'s shared table.

    Mirrors :class:`Vault`'s introspection/update API (tests and the
    Fig 13 case study poke individual vaults) while writing through to
    the store so version counters stay coherent.
    """

    def __init__(self, store: "NumpyQVStore", feature: int) -> None:
        self._store = store
        self._feature = feature

    def indices(self, value: int) -> tuple[int, ...]:
        """Plane row indices for a feature *value* (memoized in the store)."""
        return self._store._plane_indices(value)

    def q_row(self, value: int):
        """Q(φ, A) for all actions: the sum of partial rows (Fig 5b)."""
        return self._store._flat[self._store._vault_rows(self._feature, value)].sum(
            axis=0
        )

    def update(self, value: int, action: int, step: float) -> None:
        """Apply a TD step to every plane's partial Q for (value, action)."""
        self._store._apply_step(self._store._vault_rows(self._feature, value), action, step)

    @property
    def storage_entries(self) -> int:
        store = self._store
        return store._num_planes * store._entries * store._num_actions


class NumpyQVStore:
    """NumPy-backed tile-coded Q-store: the simulator's fast path.

    The whole store is one preallocated ``float64`` array of shape
    ``(features, planes, entries, actions)``, viewed flat as
    ``(features·planes·entries, actions)`` so one fancy-index gather
    fetches every partial row a state needs.  ``q_values`` reduces the
    gather with ``sum(axis=planes)`` then ``max(axis=features)`` —
    the same left-to-right association as the pure-Python store, so the
    two are bit-identical.

    On top of the vectorized path sits a per-state Q-row cache: each
    table row carries a version counter (bumped on update), and a cached
    Q-row is served only while the versions of every row it was reduced
    from are unchanged.  Loop-heavy traces revisit a small state set, so
    most ``q_values`` calls are one dict probe plus an int-tuple compare.

    Single-(state, action) reads (``q_value``, the SARSA bootstrap pair)
    and TD steps bypass the row machinery entirely: they touch exactly
    ``features·planes`` scalars via flat element indices, which beats
    even one vectorized gather at this table geometry.
    """

    def __init__(self, config: PythiaConfig) -> None:
        if _np is None:  # pragma: no cover - exercised only without numpy
            raise RuntimeError("NumpyQVStore requires numpy; use QVStore")
        self.config = config
        self._shifts = config.plane_shifts
        self._entries = config.plane_entries
        self._num_actions = config.num_actions
        self._num_planes = config.num_planes
        self._num_features = len(config.features)
        init = config.initial_q / config.num_planes
        self._table = _np.full(
            (self._num_features, self._num_planes, self._entries, self._num_actions),
            init,
            dtype=_np.float64,
        )
        #: Flat (feature·plane·entry, action) view; row id of (f, p, i)
        #: is ``(f * planes + p) * entries + i``.
        self._flat = self._table.reshape(-1, self._num_actions)
        #: Fully flat 1-D view for scalar reads/updates; the element
        #: index of (row, action) is ``row * num_actions + action``.
        self._ravel = self._table.reshape(-1)
        #: Per-row update counters backing cache invalidation.
        self._versions: list[int] = [0] * (self._flat.shape[0])
        self._index_cache: dict[int, tuple[int, ...]] = {}
        #: state -> (row-id ndarray, row-base element ids, itemgetter)
        self._state_cache: dict[StateValues, tuple] = {}
        #: state -> [version key at reduce time, reduced Q-row, argmax]
        self._q_cache: dict[StateValues, list] = {}
        self.vaults = [_NumpyVault(self, f) for f in range(self._num_features)]

    # -- indexing ----------------------------------------------------------

    def _plane_indices(self, value: int) -> tuple[int, ...]:
        cached = self._index_cache.get(value)
        if cached is None:
            cached = plane_indices(value, self._shifts, self._entries)
            if len(self._index_cache) > _CACHE_LIMIT:
                self._index_cache.clear()
            self._index_cache[value] = cached
        return cached

    def _vault_rows(self, feature: int, value: int) -> list[int]:
        """Flat row ids of *value*'s partial rows in *feature*'s vault."""
        base = feature * self._num_planes
        entries = self._entries
        return [
            (base + p) * entries + i
            for p, i in enumerate(self._plane_indices(value))
        ]

    def _state_entry(self, state: StateValues) -> tuple:
        entry = self._state_cache.get(state)
        if entry is None:
            rows: list[int] = []
            for f, value in enumerate(state):
                rows.extend(self._vault_rows(f, value))
            bases = [r * self._num_actions for r in rows]
            entry = (_np.array(rows), rows, bases, itemgetter(*rows))
            if len(self._state_cache) > _CACHE_LIMIT:
                self._state_cache.clear()
                self._q_cache.clear()
            self._state_cache[state] = entry
        return entry

    # -- mutation ----------------------------------------------------------

    def _apply_step(self, rows: list[int], action: int, step: float) -> None:
        """In-place TD step on *rows* (distinct by construction).

        Scalar read-modify-writes on the 1-D view: cheaper than one
        fancy-indexed ``+=`` at features·planes ≈ 6 touched elements.
        """
        ravel = self._ravel
        num_actions = self._num_actions
        versions = self._versions
        for r in rows:
            e = r * num_actions + action
            ravel[e] = ravel.item(e) + step
            versions[r] += 1

    # -- queries -----------------------------------------------------------

    def q_values(self, state: StateValues):
        """Q(S, A) for every action: max over vaults (Eqn 3)."""
        entry = self._state_entry(state)
        version_key = entry[3](self._versions)
        cached = self._q_cache.get(state)
        if cached is not None and cached[0] == version_key:
            return cached[1]
        gathered = self._flat[entry[0]].reshape(
            self._num_features, self._num_planes, self._num_actions
        )
        q = gathered.sum(axis=1)
        q = q.max(axis=0) if self._num_features > 1 else q[0]
        if len(self._q_cache) > _CACHE_LIMIT:
            self._q_cache.clear()
        self._q_cache[state] = [version_key, q, -1]
        return q

    def q_value(self, state: StateValues, action: int) -> float:
        """Q(S, A) for one action.

        Touches exactly the features·planes scalars that back the
        (state, action) pair — the SARSA bootstrap reads per record stay
        off the vectorized row path entirely.  Summation and max order
        match the pure-Python store bit for bit.
        """
        item = self._ravel.item
        planes = self._num_planes
        bases = self._state_entry(state)[2]
        best = None
        for f in range(0, len(bases), planes):
            q = item(bases[f] + action)
            for p in range(1, planes):
                q += item(bases[f + p] + action)
            if best is None or q > best:
                best = q
        return best

    def best_action(self, state: StateValues) -> tuple[int, float]:
        """Action index with the maximum Q-value, and that value.

        ``argmax`` returns the first maximal index, matching the pure-
        Python store's strict-``>`` scan; the index is memoized on the
        cached Q-row so repeat selections of a stable state cost one
        dict probe.
        """
        q = self.q_values(state)
        cached = self._q_cache.get(state)
        if cached is not None and cached[1] is q:
            action = cached[2]
            if action < 0:
                action = int(q.argmax())
                cached[2] = action
        else:  # pragma: no cover - cache cleared between the two probes
            action = int(q.argmax())
        return action, q.item(action)

    def sarsa_update(
        self,
        state: StateValues,
        action: int,
        reward: float,
        next_state: StateValues,
        next_action: int,
    ) -> float:
        """One SARSA step (Eqn 1 / Algorithm 1 line 29); returns the TD error.

        If *state*'s cached Q-row was valid going in, it is patched in
        place instead of being invalidated: this update touches exactly
        one action column of exactly the rows the cached reduction came
        from, so recomputing that single scalar keeps the cache exact.
        Loop-heavy traces hammer one state with interleaved
        select/update, making this the difference between a cache that
        always hits and one that always misses.
        """
        q_sa = self.q_value(state, action)
        q_next = self.q_value(next_state, next_action)
        td_error = reward + self.config.gamma * q_next - q_sa
        step = self.config.alpha * td_error
        entry = self._state_entry(state)
        cached = self._q_cache.get(state)
        was_valid = cached is not None and cached[0] == entry[3](self._versions)
        self._apply_step(entry[1], action, step)
        if was_valid:
            cached[1][action] = self.q_value(state, action)
            cached[0] = entry[3](self._versions)
            cached[2] = -1  # argmax may have moved; recompute lazily
        return td_error

    @property
    def storage_entries(self) -> int:
        """Total Q-value entries across vaults (Table 4 accounting)."""
        return self._table.size

    # -- serialization -----------------------------------------------------

    def __getstate__(self):
        """Pickle only the semantic state: the config and the Q-table.

        ``_flat``/``_ravel`` are *views* of ``_table``; default pickling
        would materialize them as three independent arrays, silently
        severing the in-place update path after a restore.  The memo
        caches hold ndarrays and ``itemgetter``s that are pure,
        rebuildable accelerations, and the version counters only gate
        those caches.  Restoring re-derives everything from
        ``(config, table)`` with empty caches — Q-values, and therefore
        simulated behaviour, are bit-identical.
        """
        return {"config": self.config, "table": self._table}

    def __setstate__(self, state) -> None:
        self.__init__(state["config"])
        self._table[...] = state["table"]


def make_qvstore(config: PythiaConfig):
    """Instantiate the Q-store implementation the config selects.

    ``qvstore_impl``: ``"auto"`` (NumPy when installed, else the pure-
    Python fallback), ``"numpy"``, or ``"python"``.  Both produce
    bit-identical Q-values; the choice is purely a speed/dependency
    trade-off, so it is excluded from result fingerprints.
    """
    impl = getattr(config, "qvstore_impl", "auto")
    if impl == "python":
        return QVStore(config)
    if impl == "numpy":
        return NumpyQVStore(config)
    if impl == "auto":
        return NumpyQVStore(config) if _np is not None else QVStore(config)
    raise ValueError(f"unknown qvstore_impl {impl!r}; use auto|numpy|python")
