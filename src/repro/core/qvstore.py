"""QVStore: the hierarchical, tile-coded Q-value store (§4.2.1).

Organization (Fig 5): one *vault* per program feature; each vault holds
``N`` *planes*, small tables indexed by a per-plane hash of the feature
value and by the action.  Retrieval:

    Q(φ_i, A) = Σ_planes  plane[idx_p(φ_i), A]          (Fig 5b)
    Q(S, A)   = max_i  Q(φ_i, A)                         (Eqn 3)

The max across vaults lets whichever feature correlates best with the
current pattern drive the decision; the per-plane sum is standard tile
coding.  SARSA updates apply the TD error to every plane of every vault
(the gradient of the sum), as the Pythia artifact does.

Two interchangeable implementations live here:

* :class:`QVStore` — the original pure-Python nested-list store.  Kept
  as the dependency-free fallback and as the reference the fast path is
  pinned against (``tests/test_hotpath_equivalence.py``).
* :class:`NumpyQVStore` — one preallocated flat cell buffer in array
  layout for the whole store, scalar hot-path reads/updates, and a
  per-state Q-row cache invalidated by per-row version counters (one
  row reduction serves every action-select between learning updates).
  This is the simulator's hot path: the two implementations produce
  bit-identical Q-values by construction (same summation order, same
  update arithmetic), and checkpoints serialize through the same NumPy
  ``(features, planes, entries, actions)`` table as before.

:func:`make_qvstore` selects between them via
``PythiaConfig.qvstore_impl`` (``"auto"`` prefers NumPy when installed).
"""

from __future__ import annotations

from operator import add as _add, itemgetter

from repro.core.config import PythiaConfig
from repro.core.tile_coding import plane_indices

try:  # NumPy is optional: the pure-Python store is a complete fallback.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

#: State values as passed around by the agent: one int per feature.
StateValues = tuple[int, ...]

#: Bound on memoization dictionaries (feature-value index caches and the
#: per-state Q-row cache); caches are cleared wholesale when exceeded.
_CACHE_LIMIT = 65536


class Vault:
    """Q-value storage for one program feature.

    Plain nested lists, not numpy: lookups touch three 16-float rows per
    query and per-element Python arithmetic beats small-array numpy
    dispatch by a wide margin on the simulator's hot path.
    """

    def __init__(self, config: PythiaConfig) -> None:
        self._shifts = config.plane_shifts
        self._entries = config.plane_entries
        self._num_actions = config.num_actions
        init = config.initial_q / config.num_planes
        self._planes: list[list[list[float]]] = [
            [[init] * config.num_actions for _ in range(config.plane_entries)]
            for _ in range(config.num_planes)
        ]
        self._index_cache: dict[int, tuple[int, ...]] = {}

    def indices(self, value: int) -> tuple[int, ...]:
        """Plane row indices for a feature *value* (memoized)."""
        cached = self._index_cache.get(value)
        if cached is None:
            cached = plane_indices(value, self._shifts, self._entries)
            if len(self._index_cache) > _CACHE_LIMIT:
                self._index_cache.clear()
            self._index_cache[value] = cached
        return cached

    def q_row(self, value: int) -> list[float]:
        """Q(φ, A) for all actions: the sum of partial rows (Fig 5b)."""
        rows = [
            self._planes[p][i] for p, i in enumerate(self.indices(value))
        ]
        first = rows[0]
        total = list(first)
        for row in rows[1:]:
            for a in range(self._num_actions):
                total[a] += row[a]
        return total

    def update(self, value: int, action: int, step: float) -> None:
        """Apply a TD step to every plane's partial Q for (value, action)."""
        for p, i in enumerate(self.indices(value)):
            self._planes[p][i][action] += step

    @property
    def storage_entries(self) -> int:
        """Total Q-value entries held (Table 4 accounting)."""
        return len(self._planes) * self._entries * self._num_actions


class QVStore:
    """The full store: one vault per constituent feature (pure Python)."""

    def __init__(self, config: PythiaConfig) -> None:
        self.config = config
        self.vaults = [Vault(config) for _ in config.features]

    def q_values(self, state: StateValues) -> list[float]:
        """Q(S, A) for every action: max over vaults (Eqn 3)."""
        rows = [vault.q_row(v) for vault, v in zip(self.vaults, state)]
        best = rows[0]
        if len(rows) == 1:
            return best
        total = list(best)
        for row in rows[1:]:
            for a in range(len(total)):
                if row[a] > total[a]:
                    total[a] = row[a]
        return total

    def q_value(self, state: StateValues, action: int) -> float:
        """Q(S, A) for one action."""
        return self.q_values(state)[action]

    def best_action(self, state: StateValues) -> tuple[int, float]:
        """Action index with the maximum Q-value, and that value."""
        q = self.q_values(state)
        best_a = 0
        best_q = q[0]
        for a in range(1, len(q)):
            if q[a] > best_q:
                best_q = q[a]
                best_a = a
        return best_a, best_q

    def sarsa_update(
        self,
        state: StateValues,
        action: int,
        reward: float,
        next_state: StateValues,
        next_action: int,
    ) -> float:
        """One SARSA step (Eqn 1 / Algorithm 1 line 29); returns the TD error.

        The TD error is computed once from the state-level Q-values and
        applied (scaled by α) to every plane of every vault.
        """
        q_sa = self.q_value(state, action)
        q_next = self.q_value(next_state, next_action)
        td_error = reward + self.config.gamma * q_next - q_sa
        step = self.config.alpha * td_error
        for vault, value in zip(self.vaults, state):
            vault.update(value, action, step)
        return td_error

    @property
    def storage_entries(self) -> int:
        """Total Q-value entries across vaults (Table 4 accounting)."""
        return sum(v.storage_entries for v in self.vaults)


class _NumpyVault:
    """Per-feature view over a :class:`NumpyQVStore`'s shared table.

    Mirrors :class:`Vault`'s introspection/update API (tests and the
    Fig 13 case study poke individual vaults) while writing through to
    the store so version counters stay coherent.
    """

    def __init__(self, store: "NumpyQVStore", feature: int) -> None:
        self._store = store
        self._feature = feature

    def indices(self, value: int) -> tuple[int, ...]:
        """Plane row indices for a feature *value* (memoized in the store)."""
        return self._store._plane_indices(value)

    def q_row(self, value: int) -> list[float]:
        """Q(φ, A) for all actions: the sum of partial rows (Fig 5b)."""
        store = self._store
        cells = store._cells
        num_actions = store._num_actions
        rows = store._vault_rows(self._feature, value)
        base = rows[0] * num_actions
        total = cells[base : base + num_actions]
        for r in rows[1:]:
            base = r * num_actions
            for a in range(num_actions):
                total[a] += cells[base + a]
        return total

    def update(self, value: int, action: int, step: float) -> None:
        """Apply a TD step to every plane's partial Q for (value, action)."""
        self._store._apply_step(self._store._vault_rows(self._feature, value), action, step)

    @property
    def storage_entries(self) -> int:
        store = self._store
        return store._num_planes * store._entries * store._num_actions


class NumpyQVStore:
    """Array-layout tile-coded Q-store: the simulator's fast path.

    The whole store is one preallocated flat cell buffer laid out as
    ``(features, planes, entries, actions)`` in row-major order — the
    element index of ``(row, action)`` is ``row * num_actions + action``
    with row id ``(f * planes + p) * entries + i``.  The live buffer is
    a Python ``list`` of floats: every hot access is a single scalar
    read or read-modify-write, and CPython list indexing beats both
    ``ndarray.item()`` and small-array gathers at this geometry (the
    name is kept for checkpoint-pickle compatibility; serialization
    still round-trips through one NumPy ``float64`` table, which is why
    the class requires NumPy).  Python floats are IEEE-754 doubles and
    every reduction below keeps the reference store's left-to-right
    association, so the two implementations stay bit-identical.

    On top sits a per-state cache holding everything derived from a
    state value in one entry — flat row ids, element bases, a versions
    itemgetter, and (when valid) the reduced Q-row with its memoized
    argmax.  Each table row carries a version counter (bumped on
    update), and a cached Q-row is served only while the versions of
    every row it was reduced from are unchanged.  Loop-heavy traces
    revisit a small state set, so most selections are one dict probe
    plus an int-tuple compare — this is what "batch Q-table row reads
    between learning updates" amounts to: one reduction is reused
    across every select in the update-free stretch.  Reductions
    themselves run through C-level ``map``: elementwise ``add`` keeps
    the per-plane left-to-right summation, elementwise ``max`` keeps
    the reference's keep-first tie-break, so bit-identity survives.

    Single-(state, action) reads (``q_value``, the SARSA bootstrap pair)
    and TD steps bypass the row machinery entirely: they touch exactly
    ``features·planes`` scalars via flat element indices.
    """

    def __init__(self, config: PythiaConfig) -> None:
        if _np is None:  # pragma: no cover - exercised only without numpy
            raise RuntimeError("NumpyQVStore requires numpy; use QVStore")
        self.config = config
        self._shifts = config.plane_shifts
        self._entries = config.plane_entries
        self._num_actions = config.num_actions
        self._num_planes = config.num_planes
        self._num_features = len(config.features)
        num_rows = self._num_features * self._num_planes * self._entries
        init = config.initial_q / config.num_planes
        #: The flat cell buffer (see class docstring for the layout).
        self._cells: list[float] = [init] * (num_rows * self._num_actions)
        #: Per-row update counters backing cache invalidation.
        self._versions: list[int] = [0] * num_rows
        self._alpha = config.alpha
        self._gamma = config.gamma
        # The paper's basic geometry (2 features × 3 planes) gets fully
        # unrolled reduction fast paths; anything else takes the generic
        # loops below.  Both compute the same left-to-right reductions.
        self._basic_geom = self._num_features == 2 and self._num_planes == 3
        self._index_cache: dict[int, tuple[int, ...]] = {}
        #: state -> [row ids, element bases, versions itemgetter,
        #:           version key at reduce time (None = stale),
        #:           reduced Q-row, memoized argmax (-1 = unknown)]
        self._state_cache: dict[StateValues, list] = {}
        self.vaults = [_NumpyVault(self, f) for f in range(self._num_features)]

    # -- indexing ----------------------------------------------------------

    def _plane_indices(self, value: int) -> tuple[int, ...]:
        cached = self._index_cache.get(value)
        if cached is None:
            cached = plane_indices(value, self._shifts, self._entries)
            if len(self._index_cache) > _CACHE_LIMIT:
                self._index_cache.clear()
            self._index_cache[value] = cached
        return cached

    def _vault_rows(self, feature: int, value: int) -> list[int]:
        """Flat row ids of *value*'s partial rows in *feature*'s vault."""
        base = feature * self._num_planes
        entries = self._entries
        return [
            (base + p) * entries + i
            for p, i in enumerate(self._plane_indices(value))
        ]

    def _state_entry(self, state: StateValues) -> list:
        entry = self._state_cache.get(state)
        if entry is None:
            rows: list[int] = []
            for f, value in enumerate(state):
                rows.extend(self._vault_rows(f, value))
            bases = [r * self._num_actions for r in rows]
            entry = [rows, bases, itemgetter(*rows), None, None, -1]
            if len(self._state_cache) > _CACHE_LIMIT:
                self._state_cache.clear()
            self._state_cache[state] = entry
        return entry

    def _reduce(self, entry: list, version_key) -> list[float]:
        """Recompute *entry*'s Q-row and stamp it with *version_key*.

        Per vault: slice the first plane's row, then elementwise-add the
        remaining planes via C-level ``map`` (same left-to-right order as
        the reference's per-element loop).  Across vaults: elementwise
        ``max`` — Python's ``max`` returns its first argument on ties, so
        carrying the accumulated row first preserves the reference's
        strict-``>`` replace rule (including ``-0.0`` vs ``0.0``).
        """
        cells = self._cells
        num_actions = self._num_actions
        bases = entry[1]
        if self._basic_geom:
            n = num_actions
            b0, b1, b2, b3, b4, b5 = bases
            row1 = map(
                _add,
                map(_add, cells[b0 : b0 + n], cells[b1 : b1 + n]),
                cells[b2 : b2 + n],
            )
            row2 = map(
                _add,
                map(_add, cells[b3 : b3 + n], cells[b4 : b4 + n]),
                cells[b5 : b5 + n],
            )
            q = list(map(max, row1, row2))
        else:
            planes = self._num_planes
            q = None
            for f in range(0, len(bases), planes):
                base = bases[f]
                row = cells[base : base + num_actions]
                for p in range(1, planes):
                    b = bases[f + p]
                    row = list(map(_add, row, cells[b : b + num_actions]))
                q = row if q is None else list(map(max, q, row))
        entry[3] = version_key
        entry[4] = q
        entry[5] = -1
        return q

    def _q_one(self, bases: list[int], action: int) -> float:
        """Q(S, A) for one action from precomputed element bases."""
        cells = self._cells
        if self._basic_geom:
            b0, b1, b2, b3, b4, b5 = bases
            q1 = cells[b0 + action] + cells[b1 + action] + cells[b2 + action]
            q2 = cells[b3 + action] + cells[b4 + action] + cells[b5 + action]
            return q2 if q2 > q1 else q1
        planes = self._num_planes
        best = None
        for f in range(0, len(bases), planes):
            q = cells[bases[f] + action]
            for p in range(1, planes):
                q += cells[bases[f + p] + action]
            if best is None or q > best:
                best = q
        return best

    # -- mutation ----------------------------------------------------------

    def _apply_step(self, rows: list[int], action: int, step: float) -> None:
        """In-place TD step on *rows* (distinct by construction).

        Scalar read-modify-writes on the flat cell list: exactly
        features·planes ≈ 6 touched elements per SARSA step.
        """
        cells = self._cells
        num_actions = self._num_actions
        versions = self._versions
        for r in rows:
            e = r * num_actions + action
            cells[e] = cells[e] + step
            versions[r] += 1

    # -- queries -----------------------------------------------------------

    def q_values(self, state: StateValues) -> list[float]:
        """Q(S, A) for every action: max over vaults (Eqn 3)."""
        entry = self._state_entry(state)
        version_key = entry[2](self._versions)
        if entry[3] == version_key:
            return entry[4]
        return self._reduce(entry, version_key)

    def q_value(self, state: StateValues, action: int) -> float:
        """Q(S, A) for one action.

        Touches exactly the features·planes scalars that back the
        (state, action) pair — the SARSA bootstrap reads per record stay
        off the row-reduction path entirely.  Summation and max order
        match the pure-Python store bit for bit.
        """
        return self._q_one(self._state_entry(state)[1], action)

    def best_action(self, state: StateValues) -> tuple[int, float]:
        """Action index with the maximum Q-value, and that value.

        The scan keeps the first maximal index (the pure-Python store's
        strict-``>`` rule, via ``max`` over indices keyed by the row, which
        also keeps the first of equals); the index is memoized on the
        cache entry so repeat selections of a stable state cost one dict
        probe and one int-tuple compare.
        """
        entry = self._state_entry(state)
        version_key = entry[2](self._versions)
        if entry[3] == version_key:
            q = entry[4]
        else:
            q = self._reduce(entry, version_key)
        action = entry[5]
        if action < 0:
            action = max(range(len(q)), key=q.__getitem__)
            entry[5] = action
        return action, q[action]

    def sarsa_update(
        self,
        state: StateValues,
        action: int,
        reward: float,
        next_state: StateValues,
        next_action: int,
    ) -> float:
        """One SARSA step (Eqn 1 / Algorithm 1 line 29); returns the TD error.

        If *state*'s cached Q-row was valid going in, it is patched in
        place instead of being invalidated: this update touches exactly
        one action column of exactly the rows the cached reduction came
        from, so recomputing that single scalar keeps the cache exact.
        Loop-heavy traces hammer one state with interleaved
        select/update, making this the difference between a cache that
        always hits and one that always misses.
        """
        entry = self._state_entry(state)
        bases = entry[1]
        q_sa = self._q_one(bases, action)
        if next_state == state:
            q_next = self._q_one(bases, next_action)
        else:
            q_next = self._q_one(self._state_entry(next_state)[1], next_action)
        td_error = reward + self._gamma * q_next - q_sa
        step = self._alpha * td_error
        was_valid = entry[3] == entry[2](self._versions)
        cells = self._cells
        versions = self._versions
        for r, b in zip(entry[0], entry[1]):
            e = b + action
            cells[e] = cells[e] + step
            versions[r] += 1
        if was_valid:
            entry[4][action] = self._q_one(bases, action)
            entry[3] = entry[2](versions)
            entry[5] = -1  # argmax may have moved; recompute lazily
        return td_error

    @property
    def storage_entries(self) -> int:
        """Total Q-value entries across vaults (Table 4 accounting)."""
        return len(self._cells)

    # -- buffer export (native replay backend) -----------------------------

    def export_table(self):
        """Copy the flat cell buffer out as one ``float64`` array.

        The layout is the flat ``_cells`` order (row-major over
        features x planes x entries x actions) — the exact element
        indexing ``_q_one``/``sarsa_update`` use, so a kernel that
        reads/writes the buffer with the same bases arithmetic sees the
        same doubles.
        """
        return _np.array(self._cells, dtype=_np.float64)

    def import_table(self, table) -> None:
        """Replace the cell buffer with *table* (flat ``float64``).

        Drops the memoized state rows: their cached Q-reductions were
        computed against the old cells and the version counters cannot
        know what an external writer touched.  Everything re-derives
        lazily, so Q-values after import are pure functions of *table*.
        """
        cells = table.tolist()
        if len(cells) != len(self._cells):
            raise ValueError(
                f"table has {len(cells)} cells; store holds {len(self._cells)}"
            )
        self._cells[:] = cells
        self._state_cache.clear()

    # -- serialization -----------------------------------------------------

    def __getstate__(self):
        """Pickle only the semantic state: the config and the Q-table.

        The cell buffer is serialized as one NumPy ``float64`` table of
        shape ``(features, planes, entries, actions)`` — the same
        payload format as every previously-written checkpoint, so old
        snapshots restore into the list-backed store unchanged (a
        ``float64`` and a Python float are the same IEEE-754 double).
        The memo caches hold pure, rebuildable accelerations, and the
        version counters only gate those caches; restoring re-derives
        everything from ``(config, table)`` with empty caches —
        Q-values, and therefore simulated behaviour, are bit-identical.
        """
        table = _np.array(self._cells, dtype=_np.float64).reshape(
            self._num_features, self._num_planes, self._entries, self._num_actions
        )
        return {"config": self.config, "table": table}

    def __setstate__(self, state) -> None:
        self.__init__(state["config"])
        self._cells[:] = state["table"].reshape(-1).tolist()


def make_qvstore(config: PythiaConfig):
    """Instantiate the Q-store implementation the config selects.

    ``qvstore_impl``: ``"auto"`` (NumPy when installed, else the pure-
    Python fallback), ``"numpy"``, or ``"python"``.  Both produce
    bit-identical Q-values; the choice is purely a speed/dependency
    trade-off, so it is excluded from result fingerprints.
    """
    impl = getattr(config, "qvstore_impl", "auto")
    if impl == "python":
        return QVStore(config)
    if impl == "numpy":
        return NumpyQVStore(config)
    if impl == "auto":
        return NumpyQVStore(config) if _np is not None else QVStore(config)
    raise ValueError(f"unknown qvstore_impl {impl!r}; use auto|numpy|python")
