"""Pythia configuration: the design-time knobs and named presets.

Everything Table 2 fixes — features, action list, rewards,
hyperparameters — plus the structure geometry of Table 4.  All of it is
meant to be "configurable via simple configuration registers" in the
hardware; here the config object is exactly those registers.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.features import BASIC_FEATURES, FeatureSpec
from repro.core.rewards import (
    BASIC_REWARDS,
    BW_OBLIVIOUS_REWARDS,
    STRICT_REWARDS,
    RewardConfig,
)
from repro.core.tile_coding import DEFAULT_PLANE_SHIFTS

#: Table 2: the pruned 16-entry prefetch action list (offset 0 = no
#: prefetch).
BASIC_ACTIONS: tuple[int, ...] = (
    -6, -3, -1, 0, 1, 3, 4, 5, 10, 11, 12, 16, 22, 23, 30, 32,
)


@dataclass(frozen=True)
class PythiaConfig:
    """Complete description of one Pythia instance.

    Attributes mirror Table 2 (features, actions, rewards,
    hyperparameters) and Table 4 (structure geometry).
    """

    features: tuple[FeatureSpec, ...] = BASIC_FEATURES
    actions: tuple[int, ...] = BASIC_ACTIONS
    rewards: RewardConfig = field(default_factory=lambda: BASIC_REWARDS)
    #: Learning rate α.  The paper's Table 2 value (0.0065) is tuned for
    #: 500M-instruction ChampSim runs; this substrate's shorter traces
    #: need faster convergence, and the §4.3.3 grid search re-run here
    #: lands on 0.02 (see repro.tuning.grid_search / EXPERIMENTS.md).
    alpha: float = 0.02
    #: Discount factor γ (Table 2).
    gamma: float = 0.556
    #: Exploration rate ε (substrate-tuned; paper Table 2 uses 0.002).
    epsilon: float = 0.005
    #: Evaluation-queue capacity (Table 4).
    eq_size: int = 256
    #: Rows per plane (feature dimension, Table 4).
    plane_entries: int = 128
    #: Plane shift constants; their count sets planes per vault (Table 4).
    plane_shifts: tuple[int, ...] = DEFAULT_PLANE_SHIFTS
    #: RNG seed for ε-greedy exploration (hardware LFSR stand-in).
    seed: int = 1
    #: Q-store implementation: ``auto`` | ``numpy`` | ``python``.  Both
    #: implementations are pinned bit-identical by tests, so this knob is
    #: non-semantic (``metadata``) and excluded from result fingerprints.
    qvstore_impl: str = field(default="auto", metadata={"semantic": False})

    @property
    def num_actions(self) -> int:
        """Size of the action list."""
        return len(self.actions)

    @property
    def num_planes(self) -> int:
        """Planes per vault."""
        return len(self.plane_shifts)

    @property
    def initial_q(self) -> float:
        """Optimistic initial Q-value (Algorithm 1, line 2).

        The paper initializes QVStore to "the highest possible Q-value,
        1/(1-γ)" — with the maximum reward folded in, that is
        R_AT/(1-γ).  Optimistic initialization makes untried actions
        look attractive, so the greedy policy explores the whole action
        list before settling — essential at this substrate's short run
        lengths where ε alone explores far too little.
        """
        return self.rewards.accurate_timely / (1.0 - self.gamma)

    def with_rewards(self, rewards: RewardConfig) -> "PythiaConfig":
        """Copy with a different reward scheme (online customization)."""
        return replace(self, rewards=rewards)

    def with_features(self, features: tuple[FeatureSpec, ...]) -> "PythiaConfig":
        """Copy with a different state-vector (online customization)."""
        return replace(self, features=features)

    @classmethod
    def named(cls, name: str) -> "PythiaConfig":
        """Named presets: ``basic``, ``strict``, ``bw_oblivious``."""
        if name == "basic":
            return cls()
        if name == "strict":
            return cls(rewards=STRICT_REWARDS)
        if name == "bw_oblivious":
            return cls(rewards=BW_OBLIVIOUS_REWARDS)
        raise KeyError(f"unknown Pythia configuration {name!r}")
