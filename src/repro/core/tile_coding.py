"""Tile-coded plane indexing for the QVStore (§4.2.1, Fig 5c).

A monolithic feature-indexed table would grow exponentially with the
feature's bit width.  Pythia instead stores each feature's Q-values in
``N`` small *planes*; each plane hashes the (shifted) feature value into
a small index.  The shift constant differs per plane, so nearby feature
values share entries in some planes (generalization) but not all of them
(resolution) — the classic CMAC/tile-coding trade-off the paper cites.
"""

from __future__ import annotations

#: Per-plane shift constants, "randomly selected at design time" (§4.2.1).
DEFAULT_PLANE_SHIFTS: tuple[int, ...] = (0, 5, 11)


def hash_index(value: int, shift: int, num_entries: int) -> int:
    """Map a feature *value* to a plane row index.

    The value is first shifted by the plane's constant (dropping low
    bits — coarser tiles in higher planes), then avalanche-hashed and
    reduced modulo the plane size.
    """
    v = (value >> shift) & 0xFFFFFFFF
    # Murmur-style finalizer: cheap, deterministic, well distributed.
    v ^= v >> 16
    v = (v * 0x85EBCA6B) & 0xFFFFFFFF
    v ^= v >> 13
    v = (v * 0xC2B2AE35) & 0xFFFFFFFF
    v ^= v >> 16
    return v % num_entries


def plane_indices(
    value: int, shifts: tuple[int, ...], num_entries: int
) -> tuple[int, ...]:
    """Row index of *value* in every plane of a vault."""
    return tuple(hash_index(value, s, num_entries) for s in shifts)
