"""Program-feature extraction: the state space of Pythia's RL agent.

§3.1 of the paper defines a program feature as the concatenation of a
*control-flow* component and a *data-flow* component (Table 3):

    control-flow: PC | PC-path (XOR of last 3 PCs) | PC ⊕ branch-PC | none
    data-flow:    cacheline address | page number | page offset |
                  cacheline delta | last-4 offsets | last-4 deltas |
                  offset ⊕ delta | none

4 × 8 = 32 candidate features; the automated feature selection of §4.3.1
searches combinations of them.  The basic Pythia configuration uses the
two winners: ``PC+Delta`` and ``Sequence of last-4 deltas``.

Cacheline deltas are tracked **per physical page** (as in the Pythia
artifact): the delta of the first access to a page is 0, which is
exactly the trigger the paper's Fig 13 case study keys on
("PC 0x436a81 generates the first load to a physical page, hence the
delta 0").
"""

from __future__ import annotations

import enum
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from operator import attrgetter

from repro.prefetchers.base import DemandContext


class ControlFlow(enum.Enum):
    """Control-flow component choices (Table 3, left column)."""

    PC = "pc"
    PC_PATH = "pc_path"
    PC_XOR_PREV = "pc_xor_prev"
    NONE = "none"


class DataFlow(enum.Enum):
    """Data-flow component choices (Table 3, right column)."""

    ADDRESS = "address"
    PAGE = "page"
    OFFSET = "offset"
    DELTA = "delta"
    LAST4_OFFSETS = "last4_offsets"
    LAST4_DELTAS = "last4_deltas"
    OFFSET_XOR_DELTA = "offset_xor_delta"
    NONE = "none"


@dataclass(frozen=True, slots=True)
class FeatureSpec:
    """One program feature: a (control-flow, data-flow) pair."""

    control: ControlFlow
    data: DataFlow

    @property
    def label(self) -> str:
        """Human-readable name, e.g. ``"PC+Delta"``."""
        parts = []
        if self.control is not ControlFlow.NONE:
            parts.append(self.control.value)
        if self.data is not DataFlow.NONE:
            parts.append(self.data.value)
        return "+".join(parts) if parts else "none"


#: The paper's winning state-vector (Table 2).
PC_DELTA = FeatureSpec(ControlFlow.PC, DataFlow.DELTA)
LAST4_DELTAS = FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_DELTAS)
BASIC_FEATURES: tuple[FeatureSpec, ...] = (PC_DELTA, LAST4_DELTAS)


def all_feature_specs() -> list[FeatureSpec]:
    """The full 32-feature candidate space of §4.3.1."""
    return [
        FeatureSpec(cf, df)
        for cf in ControlFlow
        for df in DataFlow
    ]


@dataclass(frozen=True, slots=True)
class Observation:
    """The raw components extracted for one demand request.

    Feature values are derived from these by :func:`encode_feature`.
    One instance is created per trained demand request, so the class is
    slotted to keep construction off the hot path's profile.
    """

    pc: int
    pc_path: int
    pc_xor_prev: int
    line: int
    page: int
    offset: int
    delta: int
    last4_offsets: tuple[int, ...]
    last4_deltas: tuple[int, ...]


def _mix(*values: int) -> int:
    """Deterministic non-cryptographic hash combine."""
    acc = 0x811C9DC5
    for v in values:
        acc ^= v & 0xFFFFFFFF
        acc = (acc * 0x01000193) & 0xFFFFFFFF
    return acc


def _fold_sequence(seq: tuple[int, ...]) -> int:
    acc = 0
    for v in seq:
        acc = ((acc << 7) ^ (v & 0x7F)) & 0xFFFFFFFF
    return acc


def encode_feature(spec: FeatureSpec, obs: Observation) -> int:
    """Compute the integer feature value for *spec* from *obs*."""
    if spec.control is ControlFlow.PC:
        control = obs.pc
    elif spec.control is ControlFlow.PC_PATH:
        control = obs.pc_path
    elif spec.control is ControlFlow.PC_XOR_PREV:
        control = obs.pc_xor_prev
    else:
        control = 0

    if spec.data is DataFlow.ADDRESS:
        data = obs.line
    elif spec.data is DataFlow.PAGE:
        data = obs.page
    elif spec.data is DataFlow.OFFSET:
        data = obs.offset
    elif spec.data is DataFlow.DELTA:
        data = obs.delta & 0x7F
    elif spec.data is DataFlow.LAST4_OFFSETS:
        data = _fold_sequence(obs.last4_offsets)
    elif spec.data is DataFlow.LAST4_DELTAS:
        data = _fold_sequence(obs.last4_deltas)
    elif spec.data is DataFlow.OFFSET_XOR_DELTA:
        data = obs.offset ^ (obs.delta & 0x7F)
    else:
        data = 0

    if spec.control is ControlFlow.NONE:
        return data & 0xFFFFFFFF
    if spec.data is DataFlow.NONE:
        return control & 0xFFFFFFFF
    return _mix(control, data)


def compile_encoder(spec: FeatureSpec):
    """Specialize :func:`encode_feature` for one spec at build time.

    The returned callable computes exactly ``encode_feature(spec, obs)``
    but resolves the control/data dispatch once instead of re-walking
    the enum ladders per demand request — Pythia calls one encoder per
    feature per trained record, which makes the dispatch itself hot.
    """
    control_attr = {
        ControlFlow.PC: "pc",
        ControlFlow.PC_PATH: "pc_path",
        ControlFlow.PC_XOR_PREV: "pc_xor_prev",
        ControlFlow.NONE: None,
    }[spec.control]

    if spec.data is DataFlow.ADDRESS:
        data_fn = lambda obs: obs.line  # noqa: E731
    elif spec.data is DataFlow.PAGE:
        data_fn = lambda obs: obs.page  # noqa: E731
    elif spec.data is DataFlow.OFFSET:
        data_fn = lambda obs: obs.offset  # noqa: E731
    elif spec.data is DataFlow.DELTA:
        data_fn = lambda obs: obs.delta & 0x7F  # noqa: E731
    elif spec.data is DataFlow.LAST4_OFFSETS:
        data_fn = lambda obs: _fold_sequence(obs.last4_offsets)  # noqa: E731
    elif spec.data is DataFlow.LAST4_DELTAS:
        data_fn = lambda obs: _fold_sequence(obs.last4_deltas)  # noqa: E731
    elif spec.data is DataFlow.OFFSET_XOR_DELTA:
        data_fn = lambda obs: obs.offset ^ (obs.delta & 0x7F)  # noqa: E731
    else:
        data_fn = None

    if control_attr is None:
        if data_fn is None:
            return lambda obs: 0
        return lambda obs: data_fn(obs) & 0xFFFFFFFF
    control_fn = attrgetter(control_attr)
    if data_fn is None:
        return lambda obs: control_fn(obs) & 0xFFFFFFFF

    def encode(obs: Observation) -> int:
        # _mix unrolled for exactly (control, data); same FNV constants.
        acc = ((0x811C9DC5 ^ (control_fn(obs) & 0xFFFFFFFF)) * 0x01000193) & 0xFFFFFFFF
        return ((acc ^ (data_fn(obs) & 0xFFFFFFFF)) * 0x01000193) & 0xFFFFFFFF

    return encode


@dataclass(slots=True)
class _PageHistory:
    """Per-page delta/offset history (the artifact's signature-table role)."""

    last_offset: int = -1
    deltas: deque = field(default_factory=lambda: deque(maxlen=4))
    offsets: deque = field(default_factory=lambda: deque(maxlen=4))


class FeatureExtractor:
    """Stateful extractor turning demand requests into observations.

    Tracks the global PC path and per-page offset/delta histories
    (bounded LRU, like the hardware's signature table).
    """

    def __init__(self, page_table_size: int = 256) -> None:
        self.page_table_size = page_table_size
        self._pages: OrderedDict[int, _PageHistory] = OrderedDict()
        self._last_pcs: deque[int] = deque(maxlen=3)

    def observe_basic(self, ctx: DemandContext) -> tuple[int, int]:
        """Fused observe+encode for the paper's basic state-vector.

        Returns ``(encode(PC_DELTA), encode(LAST4_DELTAS))`` directly,
        skipping the intermediate :class:`Observation` and the encoder
        dispatch.  All extractor state (page histories *and* the PC
        path) advances exactly as :meth:`observe` would, so interleaving
        the two paths is safe; equivalence is pinned by tests.
        """
        return self.observe_basic_cols(ctx.pc, ctx.page, ctx.offset)

    def observe_basic_cols(self, pc: int, page: int, offset: int) -> tuple[int, int]:
        """:meth:`observe_basic` on decoded scalars (the columnar path).

        The batched replay kernel decodes page/offset vectorized per
        epoch (:class:`repro.sim.trace.TraceColumns`), so this variant
        takes them as arguments instead of re-deriving them from a
        context object.  Same state advance, same encoding, same result.
        """
        pages = self._pages
        history = pages.get(page)
        if history is None:
            history = _PageHistory()
            pages[page] = history
            while len(pages) > self.page_table_size:
                pages.popitem(last=False)
        else:
            pages.move_to_end(page)

        last = history.last_offset
        delta = 0 if last < 0 else offset - last
        history.last_offset = offset
        deltas = history.deltas
        deltas.append(delta)
        history.offsets.append(offset)
        self._last_pcs.append(pc)

        # encode_feature(PC_DELTA): _mix(pc, delta & 0x7F), unrolled.
        acc = ((0x811C9DC5 ^ (pc & 0xFFFFFFFF)) * 0x01000193) & 0xFFFFFFFF
        pc_delta = ((acc ^ (delta & 0x7F)) * 0x01000193) & 0xFFFFFFFF
        # encode_feature(LAST4_DELTAS): the folded delta sequence.
        fold = 0
        for d in deltas:
            fold = ((fold << 7) ^ (d & 0x7F)) & 0xFFFFFFFF
        return pc_delta, fold

    def observe(self, ctx: DemandContext) -> Observation:
        """Fold one demand request into the histories; return components."""
        history = self._pages.get(ctx.page)
        if history is None:
            history = _PageHistory()
            self._pages[ctx.page] = history
            while len(self._pages) > self.page_table_size:
                self._pages.popitem(last=False)
        else:
            self._pages.move_to_end(ctx.page)

        if history.last_offset < 0:
            delta = 0
        else:
            delta = ctx.offset - history.last_offset
        history.last_offset = ctx.offset
        history.deltas.append(delta)
        history.offsets.append(ctx.offset)

        pc_path = 0
        for pc in self._last_pcs:
            pc_path ^= pc
        prev_pc = self._last_pcs[-1] if self._last_pcs else 0
        self._last_pcs.append(ctx.pc)

        return Observation(
            pc=ctx.pc,
            pc_path=pc_path ^ ctx.pc,
            pc_xor_prev=ctx.pc ^ prev_pc,
            line=ctx.line,
            page=ctx.page,
            offset=ctx.offset,
            delta=delta,
            last4_offsets=tuple(history.offsets),
            last4_deltas=tuple(history.deltas),
        )

    def reset(self) -> None:
        """Clear all histories."""
        self._pages.clear()
        self._last_pcs.clear()
