"""EQ: the evaluation queue of recently-taken actions (§4.2.3).

Pythia cannot reward an action when it takes it — whether the prefetch
turns out useful is only known later.  The EQ is a FIFO of the last
``eq_size`` actions; rewards attach to entries at three moments:

1. **insertion** — no-prefetch and out-of-page actions get their reward
   immediately;
2. **residency** — a demand matching the entry's prefetch address earns
   R_AT or R_AL depending on the *filled* bit;
3. **eviction** — entries still unrewarded were inaccurate (R_IN, by
   bandwidth usage).

On eviction the entry's (state, action, reward) plus the (state, action)
at the EQ *head* form the SARSA update pair.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.core.qvstore import StateValues


@dataclass(slots=True)
class EqEntry:
    """One recently-taken action awaiting its Q-value update.

    Slotted: one entry is created per trained demand request.

    Attributes:
        state: feature values observed when the action was taken.
        action: action index into the config's action list.
        prefetch_line: the generated prefetch address (None for
            no-prefetch / out-of-page actions).
        reward: assigned reward, or None while still pending.
        filled: True once the prefetch fill completed.
    """

    state: StateValues
    action: int
    prefetch_line: int | None = None
    reward: float | None = None
    filled: bool = False

    @property
    def has_reward(self) -> bool:
        """Whether a reward level has been assigned yet.

        (Hot paths test ``entry.reward is None`` directly; the property
        is kept for readability elsewhere.)
        """
        return self.reward is not None


class EvaluationQueue:
    """Fixed-capacity FIFO of :class:`EqEntry` with address lookup."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("EQ capacity must be positive")
        self.capacity = capacity
        self._fifo: deque[EqEntry] = deque()
        self._by_line: dict[int, EqEntry] = {}

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def head(self) -> EqEntry | None:
        """Oldest resident entry (the SARSA (S2, A2) source)."""
        return self._fifo[0] if self._fifo else None

    def search(self, line: int) -> EqEntry | None:
        """Find the most recent resident entry prefetching *line*."""
        return self._by_line.get(line)

    def mark_filled(self, line: int) -> bool:
        """Set the filled bit for *line*'s entry (Algorithm 1 line 32)."""
        entry = self._by_line.get(line)
        if entry is None:
            return False
        entry.filled = True
        return True

    def insert(self, entry: EqEntry) -> EqEntry | None:
        """Append *entry*; returns the evicted entry if the EQ was full."""
        evicted: EqEntry | None = None
        if len(self._fifo) >= self.capacity:
            evicted = self._fifo.popleft()
            if (
                evicted.prefetch_line is not None
                and self._by_line.get(evicted.prefetch_line) is evicted
            ):
                del self._by_line[evicted.prefetch_line]
        self._fifo.append(entry)
        if entry.prefetch_line is not None:
            self._by_line[entry.prefetch_line] = entry
        return evicted

    def clear(self) -> None:
        """Drop all entries (Algorithm 1 line 3)."""
        self._fifo.clear()
        self._by_line.clear()

    def __iter__(self):
        return iter(self._fifo)
