"""The SARSA agent: policy + learning loop over QVStore and EQ.

This class is the RL half of Pythia, separated from the prefetcher
plumbing so it can be unit-tested (and reused) without a simulator:
given observations and reward events it maintains the Q-values and
selects actions ε-greedily.
"""

from __future__ import annotations

import random

from repro.core.config import PythiaConfig
from repro.core.eq import EqEntry, EvaluationQueue
from repro.core.qvstore import StateValues, make_qvstore


class SarsaAgent:
    """ε-greedy SARSA agent with an evaluation queue for delayed rewards."""

    def __init__(self, config: PythiaConfig) -> None:
        self.config = config
        self.qvstore = make_qvstore(config)
        self.eq = EvaluationQueue(config.eq_size)
        self._rng = random.Random(config.seed)
        self._rng_random = self._rng.random  # bound-method hoist (hot path)
        self._epsilon = config.epsilon
        self.updates = 0
        self.explorations = 0

    def select_action(self, state: StateValues) -> int:
        """Pick an action index: ε-random, otherwise argmax Q (lines 13-16)."""
        if self._rng_random() <= self._epsilon:
            self.explorations += 1
            return self._rng.randrange(self.config.num_actions)
        action, _ = self.qvstore.best_action(state)
        return action

    def record(self, entry: EqEntry, bandwidth_high: bool = False) -> None:
        """Insert a taken action into the EQ; learn from the eviction.

        If the EQ evicts an entry that never earned a reward, the
        prefetch was inaccurate: assign R_IN for the *current* bandwidth
        condition, then run the SARSA update against the EQ head
        (Algorithm 1, lines 23-29).
        """
        evicted = self.eq.insert(entry)
        if evicted is None:
            return
        if evicted.reward is None:
            evicted.reward = self.config.rewards.inaccurate(bandwidth_high)
        head = self.eq.head
        if head is None:  # capacity 1: degenerate, bootstrap on itself
            next_state, next_action = evicted.state, evicted.action
        else:
            next_state, next_action = head.state, head.action
        self.qvstore.sarsa_update(
            evicted.state,
            evicted.action,
            evicted.reward,
            next_state,
            next_action,
        )
        self.updates += 1

    def next_eviction(self) -> EqEntry | None:
        """The entry that will be evicted by the next insert, if full."""
        if len(self.eq) < self.config.eq_size:
            return None
        return self.eq.head
