"""Pythia: the paper's primary contribution.

The RL formulation (§3), the table-based hierarchical QVStore with tile
coding (§4.2.1), the evaluation queue (§4.2.3), the SARSA agent, and the
prefetcher tying them together (Algorithm 1).
"""

from repro.core.agent import SarsaAgent
from repro.core.config import BASIC_ACTIONS, PythiaConfig
from repro.core.eq import EqEntry, EvaluationQueue
from repro.core.features import (
    BASIC_FEATURES,
    ControlFlow,
    DataFlow,
    FeatureExtractor,
    FeatureSpec,
    Observation,
    all_feature_specs,
    encode_feature,
)
from repro.core.pipeline import PIPELINE_STAGES, SearchTiming, prediction_latency, search_timing
from repro.core.pythia import Pythia
from repro.core.qvstore import NumpyQVStore, QVStore, Vault, make_qvstore
from repro.core.rewards import (
    BASIC_REWARDS,
    BW_OBLIVIOUS_REWARDS,
    STRICT_REWARDS,
    RewardConfig,
)

__all__ = [
    "SarsaAgent",
    "BASIC_ACTIONS",
    "PythiaConfig",
    "EqEntry",
    "EvaluationQueue",
    "BASIC_FEATURES",
    "ControlFlow",
    "DataFlow",
    "FeatureExtractor",
    "FeatureSpec",
    "Observation",
    "all_feature_specs",
    "encode_feature",
    "PIPELINE_STAGES",
    "SearchTiming",
    "prediction_latency",
    "search_timing",
    "Pythia",
    "NumpyQVStore",
    "QVStore",
    "Vault",
    "make_qvstore",
    "BASIC_REWARDS",
    "BW_OBLIVIOUS_REWARDS",
    "STRICT_REWARDS",
    "RewardConfig",
]
