"""Pythia's reward scheme (§3.1): five levels, two bandwidth sub-levels.

The reward structure *is* the prefetcher's objective:

* ``R_AT`` — accurate and timely (demand arrived after the fill);
* ``R_AL`` — accurate but late (demand arrived before the fill);
* ``R_CL`` — loss of coverage (action pointed outside the page);
* ``R_IN`` — inaccurate (never demanded during EQ residency), split
  into high-/low-bandwidth variants;
* ``R_NP`` — no prefetch, also split by bandwidth usage.

Raising a level makes Pythia chase it; lowering deters it.  The named
configurations reproduce Table 2 (basic) and §6.6.1 (strict: favour
not-prefetching over inaccuracy for bandwidth-hungry suites), plus the
bandwidth-oblivious ablation of §6.3.3.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RewardConfig:
    """Numerical reward level values (Table 2 layout).

    The defaults are the *substrate-tuned* basic configuration: the
    paper's §4.3.3 grid-search procedure re-run against this package's
    simulator (see ``repro.tuning.grid_search`` and EXPERIMENTS.md).
    They differ from the paper's Table 2 values because the reward
    economics differ with trace timescales: on this substrate a late
    prefetch recovers less latency (R_AL lower) and an inaccurate
    prefetch costs more queueing (R_IN more negative, R_NP no longer
    negative).  ``paper_table2()`` returns the published values.
    """

    accurate_timely: float = 20.0
    accurate_late: float = 8.0
    coverage_loss: float = -12.0
    inaccurate_high_bw: float = -12.0
    inaccurate_low_bw: float = -7.0
    no_prefetch_high_bw: float = 0.0
    no_prefetch_low_bw: float = -1.0

    @classmethod
    def paper_table2(cls) -> "RewardConfig":
        """The exact reward values published in Table 2 of the paper."""
        return cls(
            accurate_timely=20.0,
            accurate_late=12.0,
            coverage_loss=-12.0,
            inaccurate_high_bw=-14.0,
            inaccurate_low_bw=-8.0,
            no_prefetch_high_bw=-2.0,
            no_prefetch_low_bw=-4.0,
        )

    def inaccurate(self, bandwidth_high: bool) -> float:
        """R_IN for the given bandwidth condition."""
        return self.inaccurate_high_bw if bandwidth_high else self.inaccurate_low_bw

    def no_prefetch(self, bandwidth_high: bool) -> float:
        """R_NP for the given bandwidth condition."""
        return (
            self.no_prefetch_high_bw if bandwidth_high else self.no_prefetch_low_bw
        )


#: Table 2: the basic configuration found by automated reward tuning.
BASIC_REWARDS = RewardConfig()

#: §6.6.1: the "strict" customization for Ligra-like suites — punishes
#: inaccuracy harder and removes the penalty on not prefetching.
STRICT_REWARDS = RewardConfig(
    inaccurate_high_bw=-22.0,
    inaccurate_low_bw=-20.0,
    no_prefetch_high_bw=0.0,
    no_prefetch_low_bw=0.0,
)

#: §6.3.3: bandwidth-oblivious ablation — the high/low variants of R_IN
#: and R_NP collapsed to their low-bandwidth values, removing the
#: bandwidth-usage distinction exactly as the paper's experiment does.
BW_OBLIVIOUS_REWARDS = RewardConfig(
    inaccurate_high_bw=-7.0,
    inaccurate_low_bw=-7.0,
    no_prefetch_high_bw=-1.0,
    no_prefetch_low_bw=-1.0,
)
