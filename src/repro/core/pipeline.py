"""Timing model of the pipelined QVStore search (§4.2.2, Fig 6).

The hardware retrieves the Q-value of every action iteratively through a
five-stage pipeline (index generation → partial-Q retrieval → partial-Q
summation → max across features → running max across actions).  Once the
pipeline fills, one action's Q-value completes per cycle, so a full
search over ``num_actions`` actions takes ``stages + num_actions - 1``
cycles.  The same model drives the hwmodel's latency report and lets the
tuning code reason about the cost of larger action lists (§4.3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import PythiaConfig

#: Fig 6's stage names, in order.
PIPELINE_STAGES: tuple[str, ...] = (
    "index generation",
    "retrieve partial Q-values",
    "sum partial Q-values",
    "max across features",
    "track max across actions",
)


@dataclass(frozen=True)
class SearchTiming:
    """Latency/throughput summary of one QVStore search."""

    stages: int
    actions: int

    @property
    def fill_latency(self) -> int:
        """Cycles until the first action's Q-value emerges."""
        return self.stages

    @property
    def total_latency(self) -> int:
        """Cycles to conclude the search over all actions."""
        return self.stages + self.actions - 1

    @property
    def throughput(self) -> float:
        """Actions retired per cycle in steady state (pipelined => 1)."""
        return 1.0


def search_timing(config: PythiaConfig) -> SearchTiming:
    """Pipeline timing for a configuration's action-list length."""
    return SearchTiming(stages=len(PIPELINE_STAGES), actions=config.num_actions)


def prediction_latency(config: PythiaConfig) -> int:
    """End-to-end prediction latency in cycles for one demand request."""
    return search_timing(config).total_latency
