"""Pythia: the RL-based prefetcher (Algorithm 1, end to end).

For every demand request Pythia:

1. searches the EQ with the demanded address and rewards a matching
   entry R_AT / R_AL by its filled bit (lines 6-11);
2. extracts the state-vector from the request's attributes (line 12);
3. ε-greedily selects a prefetch-offset action (lines 13-16);
4. issues the prefetch — unless the action is 0 (no prefetch) or lands
   outside the physical page, which earn their reward immediately
   (lines 17-22);
5. inserts the new EQ entry; the eviction this causes assigns R_IN if
   needed and performs the SARSA update against the EQ head
   (lines 23-29).

Prefetch fills set the filled bit via :meth:`on_prefetch_fill`
(lines 31-32).
"""

from __future__ import annotations

from repro.core.agent import SarsaAgent
from repro.core.config import PythiaConfig
from repro.core.eq import EqEntry
from repro.core.features import (
    BASIC_FEATURES,
    FeatureExtractor,
    Observation,
    compile_encoder,
)
from repro.core.qvstore import StateValues
from repro.prefetchers.base import DemandContext, Prefetcher
from repro.types import LINES_PER_PAGE, make_line


class Pythia(Prefetcher):
    """Customizable RL prefetcher.

    Args:
        config: design-time/register configuration; defaults to the
            basic configuration of Table 2.

    The instance exposes its :class:`~repro.core.agent.SarsaAgent` as
    ``agent`` for introspection (Q-value case studies, tests) and counts
    action selections in ``action_counts`` (Fig 13's "most selected
    offsets" statistic).
    """

    name = "pythia"

    def __init__(self, config: PythiaConfig | None = None) -> None:
        self.config = config if config is not None else PythiaConfig()
        self.agent = SarsaAgent(self.config)
        self.extractor = FeatureExtractor()
        self._encoders = [compile_encoder(spec) for spec in self.config.features]
        # The paper's basic two-feature state-vector has a fused
        # observe+encode path on the extractor (pinned equivalent by
        # tests); other feature sets use the generic encoder chain.
        self._basic_features = self.config.features == BASIC_FEATURES
        self.action_counts = [0] * self.config.num_actions
        self.rewards_assigned: dict[str, int] = {
            "accurate_timely": 0,
            "accurate_late": 0,
            "coverage_loss": 0,
            "inaccurate": 0,
            "no_prefetch": 0,
        }

    # -- Algorithm 1 --------------------------------------------------------

    def train(self, ctx: DemandContext) -> list[int]:
        return self.train_cols(
            ctx.pc,
            ctx.line,
            ctx.page,
            ctx.offset,
            ctx.cycle,
            ctx.is_load,
            ctx.bandwidth_utilization,
            ctx.bandwidth_high,
        )

    def train_cols(
        self,
        pc: int,
        line: int,
        page: int,
        offset: int,
        cycle: int,
        is_load: bool,
        bandwidth_utilization: float,
        bandwidth_high: bool,
    ) -> list[int]:
        """Algorithm 1 on decoded scalars — the one training implementation.

        The batched replay kernel calls this directly with each record's
        column values; the scalar path's :meth:`train` unpacks its
        :class:`DemandContext` into the same arguments, so both backends
        run byte-for-byte the same algorithm.  The ε-greedy selection and
        the eviction-time SARSA step are inlined from
        :meth:`SarsaAgent.select_action` / :meth:`SarsaAgent.record`
        (keep in sync) — together they run once per trained record, and
        the call overhead alone was a measurable slice of the profile.
        """
        config = self.config
        rewards = config.rewards
        agent = self.agent
        rewards_assigned = self.rewards_assigned

        # (1) Reward a resident entry whose prefetch this demand vindicates.
        entry = agent.eq._by_line.get(line)
        if entry is not None and entry.reward is None:
            if entry.filled:
                entry.reward = rewards.accurate_timely
                rewards_assigned["accurate_timely"] += 1
            else:
                entry.reward = rewards.accurate_late
                rewards_assigned["accurate_late"] += 1

        # (2) Extract the state-vector.
        if self._basic_features:
            state = self.extractor.observe_basic_cols(pc, page, offset)
        else:
            state = self._encode_state(
                self.extractor.observe(
                    DemandContext(
                        pc=pc,
                        line=line,
                        cycle=cycle,
                        is_load=is_load,
                        bandwidth_utilization=bandwidth_utilization,
                        bandwidth_high=bandwidth_high,
                    )
                )
            )

        # (3) Select an action (SarsaAgent.select_action, inlined).
        if agent._rng_random() <= agent._epsilon:
            agent.explorations += 1
            action = agent._rng.randrange(config.num_actions)
        else:
            action = agent.qvstore.best_action(state)[0]
        self.action_counts[action] += 1
        offset_delta = config.actions[action]

        # (4) Generate the prefetch / classify degenerate actions.
        prefetches: list[int] = []
        target_offset = offset + offset_delta
        if offset_delta == 0:
            new_entry = EqEntry(state, action, prefetch_line=None)
            new_entry.reward = rewards.no_prefetch(bandwidth_high)
            rewards_assigned["no_prefetch"] += 1
        elif not 0 <= target_offset < LINES_PER_PAGE:
            new_entry = EqEntry(state, action, prefetch_line=None)
            new_entry.reward = rewards.coverage_loss
            rewards_assigned["coverage_loss"] += 1
        else:
            prefetch_line = make_line(page, target_offset)
            new_entry = EqEntry(state, action, prefetch_line=prefetch_line)
            prefetches.append(prefetch_line)

        # (5) Insert; eviction assigns R_IN + the SARSA update
        # (SarsaAgent.record, inlined).
        evicted = agent.eq.insert(new_entry)
        if evicted is not None:
            if evicted.reward is None:
                evicted.reward = rewards.inaccurate(bandwidth_high)
            head = agent.eq.head
            if head is None:  # capacity 1: degenerate, bootstrap on itself
                next_state, next_action = evicted.state, evicted.action
            else:
                next_state, next_action = head.state, head.action
            agent.qvstore.sarsa_update(
                evicted.state,
                evicted.action,
                evicted.reward,
                next_state,
                next_action,
            )
            agent.updates += 1
        return prefetches

    def _encode_state(self, obs: Observation) -> StateValues:
        return tuple(encode(obs) for encode in self._encoders)

    # -- serialization -------------------------------------------------------

    def __getstate__(self):
        """Drop the compiled encoders (closures, unpicklable); everything
        else — agent, extractor, counters — pickles as-is.  Checkpointed
        replay (:mod:`repro.sim.engine`) depends on this round-trip."""
        state = self.__dict__.copy()
        del state["_encoders"]
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self._encoders = [compile_encoder(spec) for spec in self.config.features]

    # -- callbacks -----------------------------------------------------------

    def on_prefetch_fill(self, line: int, cycle: int) -> None:
        self.agent.eq.mark_filled(line)

    def reset(self) -> None:
        self.agent = SarsaAgent(self.config)
        self.extractor.reset()
        self.action_counts = [0] * self.config.num_actions
        for key in self.rewards_assigned:
            self.rewards_assigned[key] = 0

    # -- introspection ---------------------------------------------------------

    def top_actions(self, count: int = 2) -> list[tuple[int, int]]:
        """Most-selected prefetch offsets as (offset, times) pairs."""
        ranked = sorted(
            range(self.config.num_actions),
            key=lambda a: -self.action_counts[a],
        )
        return [
            (self.config.actions[a], self.action_counts[a])
            for a in ranked[:count]
        ]
