"""Common value types and address arithmetic shared across the simulator.

The simulator works in *cacheline* units wherever possible: a ``line``
is a 64-byte-aligned address divided by the line size, and a ``page`` is
a 4 KB-aligned address divided by the page size.  Keeping everything in
line units avoids repeated shifting in hot loops and makes off-by-one
errors in delta/offset arithmetic much harder to write.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Bytes per cacheline (fixed at the conventional 64 B, as in the paper).
LINE_SIZE = 64
#: Bytes per physical page (conventional 4 KB, as in the paper).
PAGE_SIZE = 4096
#: Cachelines per page: 4096 / 64 = 64 lines, so in-page offsets are 0..63.
LINES_PER_PAGE = PAGE_SIZE // LINE_SIZE
#: log2(LINES_PER_PAGE), used for shifting line addresses to page numbers.
PAGE_SHIFT_LINES = 6

#: The largest legal prefetch offset magnitude for in-page prefetching.
#: The paper's full action space is offsets in [-63, 63].
MAX_OFFSET = LINES_PER_PAGE - 1


class AccessType(enum.Enum):
    """Classification of a memory request moving through the hierarchy."""

    LOAD = "load"
    STORE = "store"
    PREFETCH = "prefetch"

    @property
    def is_demand(self) -> bool:
        """True for requests issued by the program rather than a prefetcher."""
        return self is not AccessType.PREFETCH


def prefetch_accuracy(useful: int, useless: int) -> float:
    """Useful fraction of *judged* prefetches: useful / (useful + useless).

    The single source of truth for the paper's prefetch-accuracy metric;
    both per-cache-level statistics (:class:`repro.sim.cache.CacheStats`)
    and run-level statistics (:class:`repro.sim.system.SimulationResult`)
    delegate here, differing only in what they count as useless (evicted-
    unused lines vs. all judged-useless prefetches).  Unjudged prefetches
    (still resident and untouched) are excluded; zero judged means 0.0.
    """
    judged = useful + useless
    if judged == 0:
        return 0.0
    return useful / judged


def line_of(address: int) -> int:
    """Return the cacheline number of a byte *address*."""
    return address // LINE_SIZE


def page_of_line(line: int) -> int:
    """Return the physical page number containing cacheline *line*."""
    return line >> PAGE_SHIFT_LINES


def offset_of_line(line: int) -> int:
    """Return the in-page offset (0..63) of cacheline *line*."""
    return line & (LINES_PER_PAGE - 1)


def same_page(line_a: int, line_b: int) -> bool:
    """True when two cachelines live in the same physical page."""
    return page_of_line(line_a) == page_of_line(line_b)


def make_line(page: int, offset: int) -> int:
    """Compose a cacheline number from a *page* number and in-page *offset*."""
    if not 0 <= offset < LINES_PER_PAGE:
        raise ValueError(f"offset {offset} outside page (0..{LINES_PER_PAGE - 1})")
    return (page << PAGE_SHIFT_LINES) | offset


@dataclass(frozen=True)
class MemoryRequest:
    """A single memory request presented to the cache hierarchy.

    Attributes:
        pc: program counter of the instruction issuing the request.
        line: cacheline number being accessed.
        access: demand load/store or prefetch.
        core: index of the issuing core (0 in single-core runs).
    """

    pc: int
    line: int
    access: AccessType
    core: int = 0

    @property
    def page(self) -> int:
        """Physical page number of the request."""
        return page_of_line(self.line)

    @property
    def offset(self) -> int:
        """In-page cacheline offset of the request."""
        return offset_of_line(self.line)
