"""repro: a Python reproduction of Pythia (MICRO 2021).

Pythia formulates hardware prefetching as online reinforcement learning:
for every demand request the prefetcher observes a vector of program
features, selects a prefetch offset via a tile-coded Q-value store, and
is rewarded for accurate, timely, bandwidth-respecting prefetches.

This package contains the full system: the trace-driven simulator
substrate (:mod:`repro.sim`), synthetic workload generators
(:mod:`repro.workloads`), ten baseline prefetchers
(:mod:`repro.prefetchers`), Pythia itself (:mod:`repro.core`), the
automated design-space exploration (:mod:`repro.tuning`), hardware
overhead models (:mod:`repro.hwmodel`), and the experiment harness that
regenerates every table and figure (:mod:`repro.harness`).

Quickstart::

    from repro.core import Pythia
    from repro.sim import simulate, baseline_single_core
    from repro.workloads import generate_trace

    trace = generate_trace("spec06/gemsfdtd", length=50_000, seed=1)
    base = simulate(trace, baseline_single_core())
    result = simulate(trace, baseline_single_core(), Pythia())
    print(result.ipc / base.ipc)
"""

__version__ = "1.0.0"

from repro.types import LINE_SIZE, PAGE_SIZE, LINES_PER_PAGE

#: Names re-exported lazily from :mod:`repro.api` (PEP 562) so that
#: ``from repro import Session`` works without making ``import repro``
#: pull in the whole simulator stack.
_API_EXPORTS = {
    "Session",
    "Experiment",
    "ResultSet",
    "ResultStore",
    "SerialExecutor",
    "ProcessPoolExecutor",
    "PrefetcherSpec",
    "SystemSpec",
}

__all__ = [
    "LINE_SIZE",
    "PAGE_SIZE",
    "LINES_PER_PAGE",
    "__version__",
    *sorted(_API_EXPORTS),
]


def __getattr__(name: str):
    if name in _API_EXPORTS:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
