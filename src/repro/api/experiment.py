"""Declarative experiment descriptions: traces × prefetchers × systems.

An :class:`Experiment` is an immutable value object describing a sweep;
nothing runs until :meth:`repro.api.Session.run` expands it into
:class:`Cell` / :class:`MixCell` work units.  Builder methods return new
instances, so sweeps compose::

    ex = (Experiment.define("fig8b")
          .with_suites("SPEC06")
          .with_prefetchers("spp", "bingo", "mlop", "pythia")
          .sweep_mtps([600, 1200, 2400, 4800]))

Every axis is string-addressable through :mod:`repro.registry`:
prefetchers by registry name (with optional overrides), systems by name
plus ``@key=value`` modifiers, traces by workload/trace name.

Multi-programmed multi-core mixes are a fourth axis
(:meth:`Experiment.with_mixes`): each mix names one trace per core and
expands — crossed with the prefetcher axis — into :class:`MixCell` work
units that ride the same executor/store machinery as single-core cells.
Both cell kinds share the polymorphic work-unit contract the session and
executors rely on: ``fingerprint()``, ``baseline_cell()``,
``is_baseline``, ``execute()``, and ``record()``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.api.fingerprint import canonical, fingerprint
from repro.sim.config import SystemConfig, baseline_single_core

#: Override keys with no effect on simulation results (implementation
#: selectors whose variants are pinned bit-identical by tests).  They
#: are stripped from fingerprinted override dicts, mirroring the
#: ``metadata={"semantic": False}`` dataclass-field mechanism in
#: :func:`repro.api.fingerprint.canonical`, so e.g.
#: ``("pythia", {"qvstore_impl": "python"})`` shares its cache entries
#: with plain ``"pythia"``.
NON_SEMANTIC_OVERRIDES = frozenset({"qvstore_impl"})


def fingerprint_overrides(overrides: "tuple[tuple[str, Any], ...]") -> Any:
    """Canonical override dict with non-semantic keys stripped."""
    return canonical(
        {k: v for k, v in overrides if k not in NON_SEMANTIC_OVERRIDES}
    )


@dataclass(frozen=True)
class PrefetcherSpec:
    """Declarative prefetcher: registry name plus factory overrides.

    Attributes:
        name: :mod:`repro.registry` prefetcher name.
        overrides: sorted ``(key, value)`` pairs forwarded to the
            factory (kept as a tuple so specs stay hashable).
        label: display label for rollups; defaults to *name*, with the
            override keys appended when overrides are present.
    """

    name: str
    overrides: tuple[tuple[str, Any], ...] = ()
    label: str | None = None

    @staticmethod
    def of(spec: "PrefetcherSpec | str | tuple") -> "PrefetcherSpec":
        """Coerce a name, ``(name, overrides_dict)`` pair, or spec."""
        if isinstance(spec, PrefetcherSpec):
            return spec
        if isinstance(spec, str):
            return PrefetcherSpec(spec)
        if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[1], dict):
            name, overrides = spec
            return PrefetcherSpec(name, tuple(sorted(overrides.items())))
        raise TypeError(f"cannot interpret prefetcher spec {spec!r}")

    @property
    def display(self) -> str:
        """Rollup label."""
        if self.label:
            return self.label
        if not self.overrides:
            return self.name
        keys = ",".join(k for k, _ in self.overrides)
        return f"{self.name}[{keys}]"

    def build(self):
        """Instantiate a fresh prefetcher through the unified registry."""
        from repro import registry

        return registry.create(self.name, **dict(self.overrides))


@dataclass(frozen=True)
class SystemSpec:
    """A labelled system configuration (label drives pivot/rollup keys)."""

    label: str
    config: SystemConfig

    @staticmethod
    def of(spec: "SystemSpec | str | SystemConfig | tuple") -> "SystemSpec":
        """Coerce a name, config object, ``(label, config)`` pair, or spec."""
        from repro import registry

        if isinstance(spec, SystemSpec):
            return spec
        if isinstance(spec, str):
            return SystemSpec(spec, registry.system(spec))
        if isinstance(spec, SystemConfig):
            return SystemSpec(f"custom-{fingerprint(spec)[:8]}", spec)
        if isinstance(spec, tuple) and len(spec) == 2:
            label, config = spec
            return SystemSpec(label, registry.system(config))
        raise TypeError(f"cannot interpret system spec {spec!r}")


@dataclass(frozen=True)
class Cell:
    """One fully-specified unit of simulation work.

    Cells are pure data (picklable, hashable) so executors can ship them
    to worker processes, and carry everything that determines the
    simulation's outcome so :meth:`fingerprint` is a *complete* cache
    key — the fix for the historical baseline under-keying bug.
    """

    trace: str
    prefetcher: PrefetcherSpec
    system: SystemSpec
    trace_length: int
    warmup_fraction: float
    l1_prefetcher: PrefetcherSpec | None = None
    #: Absolute warmup length in records; overrides ``warmup_fraction``
    #: when set (the paper's 100M-of-600M convention).  Because the
    #: warmup split then stays put as ``trace_length`` grows, a longer
    #: run of the same cell can resume from the shorter run's
    #: checkpoints (see :meth:`prefix_fingerprint`).
    warmup_records: int | None = None
    #: Records per telemetry window (0 = off).  Non-semantic: telemetry
    #: only observes counters, so it never participates in fingerprints.
    telemetry_window: int = 0

    def _prefetcher_payloads(self) -> dict:
        from repro import registry

        return {
            "prefetcher": {
                "name": self.prefetcher.name,
                "overrides": fingerprint_overrides(self.prefetcher.overrides),
                "resolved": registry.resolved_prefetcher_config(
                    self.prefetcher.name, **dict(self.prefetcher.overrides)
                ),
            },
            "l1_prefetcher": None
            if self.l1_prefetcher is None
            else {
                "name": self.l1_prefetcher.name,
                "overrides": fingerprint_overrides(self.l1_prefetcher.overrides),
                "resolved": registry.resolved_prefetcher_config(
                    self.l1_prefetcher.name, **dict(self.l1_prefetcher.overrides)
                ),
            },
        }

    def fingerprint(self) -> str:
        """Content hash over every outcome-determining field.

        Self-invalidating: beyond the declarative spec it folds in the
        *resolved* prefetcher configuration (preset defaults and
        constructor defaults included) and the trace's content stamp, so
        stale store entries die with the code that produced them instead
        of waiting for a manual ``SCHEMA_VERSION`` bump.  Cells with a
        fractional warmup keep the historical payload layout (so
        existing store entries survive); an absolute ``warmup_records``
        replaces the fraction in the payload, since only the effective
        split determines the outcome.
        """
        from repro import registry

        warmup = (
            {"warmup_fraction": self.warmup_fraction}
            if self.warmup_records is None
            else {"warmup_records": self.warmup_records}
        )
        return fingerprint(
            {
                "kind": "cell",
                "trace": self.trace,
                "trace_length": self.trace_length,
                "trace_stamp": registry.trace_stamp(self.trace, self.trace_length),
                **warmup,
                **self._prefetcher_payloads(),
                "system": canonical(self.system.config),
            }
        )

    def prefix_fingerprint(self) -> str:
        """Checkpoint-namespace key: the fingerprint minus the length axis.

        Everything length-dependent is dropped — ``trace_length``, the
        length-keyed trace stamp, and the warmup split — because replay
        *state evolution* does not depend on them: two cells differing
        only there consume the same record stream.  Checkpoints under
        one prefix are validated at adoption time against the consumed
        records' CRC and the resuming run's drain history
        (:class:`repro.sim.engine.EngineState`), which is what makes the
        shared namespace safe.
        """
        return fingerprint(
            {
                "kind": "cell-prefix",
                "trace": self.trace,
                **self._prefetcher_payloads(),
                "system": canonical(self.system.config),
            }
        )

    def baseline_cell(self) -> "Cell":
        """The no-prefetching run this cell's metrics are relative to.

        Telemetry is dropped: the baseline's timeline is unreachable
        through the result API (records expose ``result.timeline``
        only), so keeping the window would re-simulate every cached
        baseline for rows nobody can read.  An explicitly requested
        ``"none"`` cell keeps its own window and still gets rows.
        """
        return replace(
            self,
            prefetcher=PrefetcherSpec("none"),
            l1_prefetcher=None,
            telemetry_window=0,
        )

    @property
    def is_baseline(self) -> bool:
        return self.prefetcher.name == "none" and self.l1_prefetcher is None

    def execute(self, checkpoints=None, checkpoint_every: int = 0):
        """Simulate this cell from its declarative spec.

        Args:
            checkpoints: optional checkpoint namespace
                (:meth:`repro.api.store.ResultStore.checkpoints` bound
                to :meth:`prefix_fingerprint`) to resume from and save
                into.
            checkpoint_every: snapshot cadence in records.
        """
        from repro import registry
        from repro.sim.system import simulate

        trace = registry.cached_trace(self.trace, self.trace_length)
        prefetcher = self.prefetcher.build()
        l1 = self.l1_prefetcher.build() if self.l1_prefetcher is not None else None
        return simulate(
            trace,
            self.system.config,
            prefetcher,
            warmup_fraction=self.warmup_fraction,
            l1_prefetcher=l1,
            warmup_records=self.warmup_records,
            telemetry_window=self.telemetry_window,
            checkpoints=checkpoints,
            checkpoint_every=checkpoint_every,
        )

    def record(self, result, baseline):
        """Pair a measurement with its baseline as a typed record."""
        from repro import registry
        from repro.api.resultset import CellResult

        return CellResult(
            trace_name=result.trace_name,
            suite=registry.suite_of(self.trace),
            prefetcher=self.prefetcher.display,
            system=self.system.label,
            result=result,
            baseline=baseline,
        )


@dataclass(frozen=True)
class ReplicatedCell(Cell):
    """One seed-replicate of a cell (:meth:`Experiment.with_seeds`).

    A plain :class:`Cell` whose :attr:`trace` is the *seed*-th replicate
    of :attr:`base_trace`'s workload.  The fingerprint is inherited
    unchanged, so a replicate shares its store entry with an equivalent
    unreplicated cell on the same seeded trace — replication adds no new
    cache keys, only a grouping convention: :meth:`record` reports the
    *base* workload name and carries :attr:`seed`, so
    :meth:`~repro.api.resultset.ResultSet.rollup` aggregates replicates
    of one workload together (``agg="mean"``/``"std"``/``"ci95"``).
    """

    seed: int = 1
    base_trace: str = ""

    def record(self, result, baseline):
        """Typed record keyed by the base workload, carrying the seed."""
        from repro import registry
        from repro.api.resultset import CellResult

        return CellResult(
            trace_name=self.base_trace or result.trace_name,
            suite=registry.suite_of(self.trace),
            prefetcher=self.prefetcher.display,
            system=self.system.label,
            result=result,
            baseline=baseline,
            seed=self.seed,
        )


@dataclass(frozen=True)
class MixCell:
    """One multi-programmed multi-core mix as a declarative work unit.

    The mix analogue of :class:`Cell`: pure picklable data naming one
    registry-addressable trace per core, sharing the complete-fingerprint
    scheme (trace content stamps, resolved prefetcher config, full system
    config, warmup) so mixes land in the same
    :class:`~repro.api.store.ResultStore` and fan out through the same
    executors as single-core cells.
    """

    name: str
    traces: tuple[str, ...]
    prefetcher: PrefetcherSpec
    system: SystemSpec
    trace_length: int
    warmup_fraction: float
    records_per_core: int | None = None
    #: Absolute per-core warmup in records; overrides the fraction.
    warmup_records: int | None = None
    #: Lockstep steps per telemetry window (0 = off; non-semantic).
    telemetry_window: int = 0

    def fingerprint(self) -> str:
        """Content hash over every outcome-determining field.

        The payload layout matches the historical ``Session.run_mix``
        key, so store entries written before mixes became declarative
        stay valid; as with :class:`Cell`, an absolute
        ``warmup_records`` replaces the fraction in the payload.
        """
        from repro import registry

        warmup = (
            {"warmup_fraction": self.warmup_fraction}
            if self.warmup_records is None
            else {"warmup_records": self.warmup_records}
        )
        return fingerprint(
            {
                "kind": "mix",
                "traces": [
                    (t, self.trace_length, registry.trace_stamp(t, self.trace_length))
                    for t in self.traces
                ],
                "prefetcher": {
                    "name": self.prefetcher.name,
                    "overrides": fingerprint_overrides(self.prefetcher.overrides),
                    "resolved": registry.resolved_prefetcher_config(
                        self.prefetcher.name, **dict(self.prefetcher.overrides)
                    ),
                },
                "system": canonical(self.system.config),
                **warmup,
                "records_per_core": self.records_per_core,
            }
        )

    def baseline_cell(self) -> "MixCell":
        """The no-prefetching run of the same mix.

        Telemetry is dropped: the baseline's timeline is unreachable
        through the result API (records expose ``result.timeline``
        only), so simulating it would cost a full re-run for rows
        nobody can read.
        """
        return replace(self, prefetcher=PrefetcherSpec("none"), telemetry_window=0)

    @property
    def is_baseline(self) -> bool:
        return self.prefetcher.name == "none"

    def execute(self, checkpoints=None, checkpoint_every: int = 0):
        """Simulate the mix: one trace per core, shared LLC/DRAM.

        Checkpoint arguments are accepted for work-unit-contract parity
        but ignored: lockstep mixes have no meaningful prefix to extend
        (see :class:`repro.sim.engine.MultiCoreEngine`).
        """
        from repro import registry
        from repro.sim.system import simulate_multi

        traces = [
            registry.cached_trace(t, self.trace_length) for t in self.traces
        ]
        return simulate_multi(
            traces,
            self.system.config,
            prefetcher_factory=self.prefetcher.build,
            warmup_fraction=self.warmup_fraction,
            records_per_core=self.records_per_core,
            warmup_records=self.warmup_records,
            telemetry_window=self.telemetry_window,
        )

    def record(self, result, baseline):
        """Mix-level record carrying the per-core trace list."""
        from repro.api.resultset import MixCellResult

        return MixCellResult(
            trace_name=self.name,
            suite="MIX",
            prefetcher=self.prefetcher.display,
            system=self.system.label,
            result=result,
            baseline=baseline,
            traces=self.traces,
        )


#: Either kind of declarative work unit an experiment expands into.
WorkCell = Cell | MixCell


def _trace_name(trace) -> str:
    """Coerce a trace spec (name or materialized Trace) to its name."""
    name = getattr(trace, "name", None)
    return name if name is not None else str(trace)


@dataclass(frozen=True)
class MixEntry:
    """One named mix on the experiment's mix axis: traces plus system."""

    name: str
    traces: tuple[str, ...]
    system: SystemSpec

    @staticmethod
    def of(spec, default_system=None) -> "MixEntry":
        """Coerce ``(name, traces)`` / ``(name, traces, system)`` pairs.

        A bare trace sequence is also accepted; its name defaults to the
        ``+``-joined trace list.  When no system is given, the mix runs
        on the paper's ``<n>c`` baseline for its core count.
        """
        from repro import registry

        if isinstance(spec, MixEntry):
            return spec
        system = default_system
        if (
            isinstance(spec, tuple)
            and len(spec) in (2, 3)
            and isinstance(spec[0], str)
            and isinstance(spec[1], (list, tuple))
        ):
            name, traces = spec[0], spec[1]
            if len(spec) == 3:
                system = spec[2]
        else:
            name, traces = None, spec
        names = tuple(_trace_name(t) for t in traces)
        if not names:
            raise ValueError("a mix needs at least one trace")
        if name is None:
            name = "+".join(names)
        if system is None:
            system = f"{len(names)}c"
        spec_system = SystemSpec.of(system)
        if spec_system.config.num_cores != len(names):
            raise ValueError(
                f"mix {name!r} has {len(names)} traces but system "
                f"{spec_system.label!r} has {spec_system.config.num_cores} cores"
            )
        return MixEntry(name=name, traces=names, system=spec_system)


_DEFAULT_SYSTEMS = (SystemSpec("1c", baseline_single_core()),)


@dataclass(frozen=True)
class Experiment:
    """A declarative sweep: (traces × systems + mixes) × prefetchers.

    Attributes:
        name: experiment identifier (e.g. ``"fig9a"``).
        traces: trace names (``workload-seed``; bare workload names mean
            seed 1).
        prefetchers: prefetcher specs to compare.
        systems: labelled system configs to sweep over (single-core
            cells only; each mix carries its own system).
        mixes: multi-programmed mixes, each one trace per core; crossed
            with the prefetcher axis into :class:`MixCell` work units.
        trace_length: accesses per generated trace.
        warmup_fraction: leading fraction excluded from statistics.
        l1_prefetcher: optional L1 prefetcher applied to every
            single-core cell (multi-level experiments, Fig 8d).
        records_per_core: measured records per core for mixes (defaults
            to the shortest trace's post-warmup length).
        seeds: trace replicates per single-core cell
            (:meth:`with_seeds`); 1 means unreplicated.
        warmup_records: absolute warmup length in records, overriding
            *warmup_fraction* for single-core cells and (per core) for
            mixes (:meth:`with_warmup` with ``records=``); keeps
            checkpoints extension-compatible as ``trace_length`` grows.
        telemetry_window: records per telemetry window
            (:meth:`with_telemetry`); 0 disables telemetry.
    """

    name: str = "experiment"
    traces: tuple[str, ...] = ()
    prefetchers: tuple[PrefetcherSpec, ...] = ()
    systems: tuple[SystemSpec, ...] = _DEFAULT_SYSTEMS
    mixes: tuple[MixEntry, ...] = ()
    trace_length: int = 20_000
    warmup_fraction: float = 0.2
    l1_prefetcher: PrefetcherSpec | None = None
    records_per_core: int | None = None
    seeds: int = 1
    warmup_records: int | None = None
    telemetry_window: int = 0

    @classmethod
    def define(cls, name: str, **kwargs) -> "Experiment":
        """Start a builder chain: ``Experiment.define("fig9a")...``."""
        return cls(name=name, **kwargs)

    # ---- builder methods (each returns a new Experiment) ----------------

    def with_traces(self, *traces: str) -> "Experiment":
        """Replace the trace axis."""
        return replace(self, traces=tuple(traces))

    def with_suites(self, *suites: str, seeds: int | None = None) -> "Experiment":
        """Set the trace axis to every trace of the named suites.

        Args:
            suites: suite labels (``"SPEC06"``, ``"LIGRA"``, ...).
            seeds: cap on seeds per workload (default: the suite's full
                seed list).
        """
        from repro.workloads.suites import suite_trace_names

        names: list[str] = []
        for suite in suites:
            suite_names = suite_trace_names(suite)
            if seeds is not None:
                suite_names = [
                    n for n in suite_names if int(n.rpartition("-")[2]) <= seeds
                ]
            names.extend(suite_names)
        return replace(self, traces=tuple(names))

    def with_prefetchers(self, *specs) -> "Experiment":
        """Replace the prefetcher axis (names, specs, or (name, dict))."""
        return replace(
            self, prefetchers=tuple(PrefetcherSpec.of(s) for s in specs)
        )

    def with_systems(self, *specs) -> "Experiment":
        """Replace the system axis (names, configs, specs, or pairs)."""
        return replace(self, systems=tuple(SystemSpec.of(s) for s in specs))

    def sweep_mtps(
        self, points: Iterable[int], base: str | SystemConfig = "1c"
    ) -> "Experiment":
        """System axis = *base* at each DRAM transfer rate (Fig 8b)."""
        from repro import registry

        base_config = registry.system(base)
        return replace(
            self,
            systems=tuple(
                SystemSpec(f"mtps={p}", base_config.with_mtps(p)) for p in points
            ),
        )

    def sweep_llc(
        self, factors: Iterable[float], base: str | SystemConfig = "1c"
    ) -> "Experiment":
        """System axis = *base* with the LLC scaled by each factor (Fig 8c)."""
        from repro import registry

        base_config = registry.system(base)
        return replace(
            self,
            systems=tuple(
                SystemSpec(f"llc_scale={f}", base_config.scaled_llc(f))
                for f in factors
            ),
        )

    def with_length(self, trace_length: int) -> "Experiment":
        """Set accesses per generated trace."""
        return replace(self, trace_length=trace_length)

    def with_warmup(
        self, warmup_fraction: float | None = None, *, records: int | None = None
    ) -> "Experiment":
        """Set the warmup: a leading fraction, or absolute *records*.

        ``with_warmup(0.2)`` keeps the historical fractional semantics;
        ``with_warmup(records=20_000)`` pins the split in records (the
        paper's 100M-of-600M convention), which keeps the split — and
        therefore checkpoint compatibility — fixed when the experiment's
        ``trace_length`` is later extended.
        """
        if (warmup_fraction is None) == (records is None):
            raise TypeError("pass exactly one of warmup_fraction or records")
        if records is not None:
            return replace(self, warmup_records=records)
        return replace(self, warmup_fraction=warmup_fraction, warmup_records=None)

    def with_telemetry(self, window: int) -> "Experiment":
        """Attach per-window telemetry to every cell.

        Each cell's result then carries a
        :class:`~repro.sim.engine.Timeline` payload with one row per
        *window* records (lockstep steps for mixes) — IPC, cache-stat
        deltas, DRAM bucket occupancy, prefetch issued/useful/late —
        queryable via :meth:`ResultSet.timeline_rows
        <repro.api.resultset.ResultSet.timeline_rows>` and
        :meth:`CellResult.phases <repro.api.resultset.CellResult.phases>`.
        Telemetry is observational: fingerprints and simulated behaviour
        are unchanged, but a cached result recorded without (or with a
        different) window is re-simulated to obtain the rows.
        """
        if window < 0:
            raise ValueError(f"telemetry window must be >= 0, got {window}")
        return replace(self, telemetry_window=window)

    def with_l1_prefetcher(self, spec) -> "Experiment":
        """Attach an L1 prefetcher to every cell (Fig 8d)."""
        return replace(
            self,
            l1_prefetcher=None if spec is None else PrefetcherSpec.of(spec),
        )

    def with_mixes(
        self, *mixes, system=None, records_per_core: int | None = None
    ) -> "Experiment":
        """Replace the mix axis: multi-programmed multi-core sweeps.

        Each mix is ``(name, traces)``, ``(name, traces, system)``, or a
        bare trace sequence; traces may be names or materialized
        :class:`~repro.sim.trace.Trace` objects (their names are kept —
        mixes must stay registry-addressable so executors can rebuild
        them in worker processes).  *system* sets the default system for
        entries that name none; otherwise each mix runs on the ``<n>c``
        baseline matching its core count.
        """
        return replace(
            self,
            mixes=tuple(MixEntry.of(m, default_system=system) for m in mixes),
            records_per_core=records_per_core,
        )

    def with_seeds(self, seeds: int) -> "Experiment":
        """Replicate every single-core cell across *seeds* trace seeds.

        Each declared trace expands into *seeds* replicates of its
        workload (``spec06/lbm-1`` at 3 seeds → ``lbm-1``/``lbm-2``/
        ``lbm-3`` as :class:`ReplicatedCell` work units) riding the
        normal executor/store machinery; records report the *base*
        workload name and carry their seed, so
        :meth:`ResultSet.rollup(..., agg="mean"|"std"|"ci95")
        <repro.api.resultset.ResultSet.rollup>` reports variance across
        replicates.  A trace axis naming several seeds of one workload
        (as ``with_suites`` does) collapses to one replicate set per
        workload, so no replicate is double-counted.  Non-reseedable
        traces (``file/`` recordings) run once.  Mixes are unaffected.
        """
        if seeds < 1:
            raise ValueError(f"seeds must be >= 1, got {seeds}")
        return replace(self, seeds=seeds)

    # ---- expansion ------------------------------------------------------

    def _replicated(self, trace: str, prefetcher, system) -> list["Cell"]:
        """The seed replicates of one (trace, prefetcher, system) cell."""
        from repro import registry

        cells: list[Cell] = []
        base = registry.base_workload_name(trace)
        for seed in range(1, self.seeds + 1):
            seeded = registry.reseed_trace_name(trace, seed)
            if seeded is None:  # fixed recording: one cell, no seed axis
                if seed > 1:
                    break
                seeded = trace
            cells.append(
                ReplicatedCell(
                    trace=seeded,
                    prefetcher=prefetcher,
                    system=system,
                    trace_length=self.trace_length,
                    warmup_fraction=self.warmup_fraction,
                    l1_prefetcher=self.l1_prefetcher,
                    warmup_records=self.warmup_records,
                    telemetry_window=self.telemetry_window,
                    seed=seed,
                    base_trace=base,
                )
            )
        return cells

    def cells(self) -> list[WorkCell]:
        """Expand the declarative cross product into work units."""
        if not self.traces and not self.mixes:
            raise ValueError(f"experiment {self.name!r} has no traces or mixes")
        if not self.prefetchers:
            raise ValueError(f"experiment {self.name!r} has no prefetchers")
        if self.traces and not self.systems:
            raise ValueError(f"experiment {self.name!r} has no systems")
        traces: Sequence[str] = self.traces
        if self.seeds > 1 and traces:
            # Replication expands each *workload* into its seed set, so a
            # trace axis already naming several seeds of one workload
            # (e.g. with_suites lists 2 per workload) must collapse to
            # one entry each — otherwise every replicate appears once per
            # listed seed and the variance statistics double-count.
            from repro import registry

            unique: dict[str, str] = {}
            for trace in traces:
                unique.setdefault(registry.base_workload_name(trace), trace)
            traces = list(unique.values())
        cells: list[WorkCell] = []
        for system in self.systems:
            for trace in traces:
                for prefetcher in self.prefetchers:
                    if self.seeds == 1:
                        cells.append(
                            Cell(
                                trace=trace,
                                prefetcher=prefetcher,
                                system=system,
                                trace_length=self.trace_length,
                                warmup_fraction=self.warmup_fraction,
                                l1_prefetcher=self.l1_prefetcher,
                                warmup_records=self.warmup_records,
                                telemetry_window=self.telemetry_window,
                            )
                        )
                    else:
                        cells.extend(self._replicated(trace, prefetcher, system))
        cells.extend(
            MixCell(
                name=mix.name,
                traces=mix.traces,
                prefetcher=prefetcher,
                system=mix.system,
                trace_length=self.trace_length,
                warmup_fraction=self.warmup_fraction,
                records_per_core=self.records_per_core,
                warmup_records=self.warmup_records,
                telemetry_window=self.telemetry_window,
            )
            for mix in self.mixes
            for prefetcher in self.prefetchers
        )
        return cells

    def __len__(self) -> int:
        if self.seeds > 1 and self.traces and self.prefetchers and self.systems:
            return len(self.cells())
        return (
            len(self.traces) * len(self.systems) + len(self.mixes)
        ) * len(self.prefetchers)
