"""Declarative experiment descriptions: traces × prefetchers × systems.

An :class:`Experiment` is an immutable value object describing a sweep;
nothing runs until :meth:`repro.api.Session.run` expands it into
:class:`Cell` work units.  Builder methods return new instances, so
sweeps compose::

    ex = (Experiment.define("fig8b")
          .with_suites("SPEC06")
          .with_prefetchers("spp", "bingo", "mlop", "pythia")
          .sweep_mtps([600, 1200, 2400, 4800]))

Every axis is string-addressable through :mod:`repro.registry`:
prefetchers by registry name (with optional overrides), systems by name
plus ``@key=value`` modifiers, traces by workload/trace name.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.api.fingerprint import canonical, fingerprint
from repro.sim.config import SystemConfig, baseline_single_core

#: Override keys with no effect on simulation results (implementation
#: selectors whose variants are pinned bit-identical by tests).  They
#: are stripped from fingerprinted override dicts, mirroring the
#: ``metadata={"semantic": False}`` dataclass-field mechanism in
#: :func:`repro.api.fingerprint.canonical`, so e.g.
#: ``("pythia", {"qvstore_impl": "python"})`` shares its cache entries
#: with plain ``"pythia"``.
NON_SEMANTIC_OVERRIDES = frozenset({"qvstore_impl"})


def fingerprint_overrides(overrides: "tuple[tuple[str, Any], ...]") -> Any:
    """Canonical override dict with non-semantic keys stripped."""
    return canonical(
        {k: v for k, v in overrides if k not in NON_SEMANTIC_OVERRIDES}
    )


@dataclass(frozen=True)
class PrefetcherSpec:
    """Declarative prefetcher: registry name plus factory overrides.

    Attributes:
        name: :mod:`repro.registry` prefetcher name.
        overrides: sorted ``(key, value)`` pairs forwarded to the
            factory (kept as a tuple so specs stay hashable).
        label: display label for rollups; defaults to *name*, with the
            override keys appended when overrides are present.
    """

    name: str
    overrides: tuple[tuple[str, Any], ...] = ()
    label: str | None = None

    @staticmethod
    def of(spec: "PrefetcherSpec | str | tuple") -> "PrefetcherSpec":
        """Coerce a name, ``(name, overrides_dict)`` pair, or spec."""
        if isinstance(spec, PrefetcherSpec):
            return spec
        if isinstance(spec, str):
            return PrefetcherSpec(spec)
        if isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[1], dict):
            name, overrides = spec
            return PrefetcherSpec(name, tuple(sorted(overrides.items())))
        raise TypeError(f"cannot interpret prefetcher spec {spec!r}")

    @property
    def display(self) -> str:
        """Rollup label."""
        if self.label:
            return self.label
        if not self.overrides:
            return self.name
        keys = ",".join(k for k, _ in self.overrides)
        return f"{self.name}[{keys}]"

    def build(self):
        """Instantiate a fresh prefetcher through the unified registry."""
        from repro import registry

        return registry.create(self.name, **dict(self.overrides))


@dataclass(frozen=True)
class SystemSpec:
    """A labelled system configuration (label drives pivot/rollup keys)."""

    label: str
    config: SystemConfig

    @staticmethod
    def of(spec: "SystemSpec | str | SystemConfig | tuple") -> "SystemSpec":
        """Coerce a name, config object, ``(label, config)`` pair, or spec."""
        from repro import registry

        if isinstance(spec, SystemSpec):
            return spec
        if isinstance(spec, str):
            return SystemSpec(spec, registry.system(spec))
        if isinstance(spec, SystemConfig):
            return SystemSpec(f"custom-{fingerprint(spec)[:8]}", spec)
        if isinstance(spec, tuple) and len(spec) == 2:
            label, config = spec
            return SystemSpec(label, registry.system(config))
        raise TypeError(f"cannot interpret system spec {spec!r}")


@dataclass(frozen=True)
class Cell:
    """One fully-specified unit of simulation work.

    Cells are pure data (picklable, hashable) so executors can ship them
    to worker processes, and carry everything that determines the
    simulation's outcome so :meth:`fingerprint` is a *complete* cache
    key — the fix for the historical baseline under-keying bug.
    """

    trace: str
    prefetcher: PrefetcherSpec
    system: SystemSpec
    trace_length: int
    warmup_fraction: float
    l1_prefetcher: PrefetcherSpec | None = None

    def fingerprint(self) -> str:
        """Content hash over every outcome-determining field.

        Self-invalidating: beyond the declarative spec it folds in the
        *resolved* prefetcher configuration (preset defaults and
        constructor defaults included) and the trace's content stamp, so
        stale store entries die with the code that produced them instead
        of waiting for a manual ``SCHEMA_VERSION`` bump.
        """
        from repro import registry

        return fingerprint(
            {
                "kind": "cell",
                "trace": self.trace,
                "trace_length": self.trace_length,
                "trace_stamp": registry.trace_stamp(self.trace, self.trace_length),
                "warmup_fraction": self.warmup_fraction,
                "prefetcher": {
                    "name": self.prefetcher.name,
                    "overrides": fingerprint_overrides(self.prefetcher.overrides),
                    "resolved": registry.resolved_prefetcher_config(
                        self.prefetcher.name, **dict(self.prefetcher.overrides)
                    ),
                },
                "l1_prefetcher": None
                if self.l1_prefetcher is None
                else {
                    "name": self.l1_prefetcher.name,
                    "overrides": fingerprint_overrides(self.l1_prefetcher.overrides),
                    "resolved": registry.resolved_prefetcher_config(
                        self.l1_prefetcher.name, **dict(self.l1_prefetcher.overrides)
                    ),
                },
                "system": canonical(self.system.config),
            }
        )

    def baseline_cell(self) -> "Cell":
        """The no-prefetching run this cell's metrics are relative to."""
        return replace(self, prefetcher=PrefetcherSpec("none"), l1_prefetcher=None)

    @property
    def is_baseline(self) -> bool:
        return self.prefetcher.name == "none" and self.l1_prefetcher is None


_DEFAULT_SYSTEMS = (SystemSpec("1c", baseline_single_core()),)


@dataclass(frozen=True)
class Experiment:
    """A declarative sweep: traces × prefetchers × systems.

    Attributes:
        name: experiment identifier (e.g. ``"fig9a"``).
        traces: trace names (``workload-seed``; bare workload names mean
            seed 1).
        prefetchers: prefetcher specs to compare.
        systems: labelled system configs to sweep over.
        trace_length: accesses per generated trace.
        warmup_fraction: leading fraction excluded from statistics.
        l1_prefetcher: optional L1 prefetcher applied to every cell
            (multi-level experiments, Fig 8d).
    """

    name: str = "experiment"
    traces: tuple[str, ...] = ()
    prefetchers: tuple[PrefetcherSpec, ...] = ()
    systems: tuple[SystemSpec, ...] = _DEFAULT_SYSTEMS
    trace_length: int = 20_000
    warmup_fraction: float = 0.2
    l1_prefetcher: PrefetcherSpec | None = None

    @classmethod
    def define(cls, name: str, **kwargs) -> "Experiment":
        """Start a builder chain: ``Experiment.define("fig9a")...``."""
        return cls(name=name, **kwargs)

    # ---- builder methods (each returns a new Experiment) ----------------

    def with_traces(self, *traces: str) -> "Experiment":
        """Replace the trace axis."""
        return replace(self, traces=tuple(traces))

    def with_suites(self, *suites: str, seeds: int | None = None) -> "Experiment":
        """Set the trace axis to every trace of the named suites.

        Args:
            suites: suite labels (``"SPEC06"``, ``"LIGRA"``, ...).
            seeds: cap on seeds per workload (default: the suite's full
                seed list).
        """
        from repro.workloads.suites import suite_trace_names

        names: list[str] = []
        for suite in suites:
            suite_names = suite_trace_names(suite)
            if seeds is not None:
                suite_names = [
                    n for n in suite_names if int(n.rpartition("-")[2]) <= seeds
                ]
            names.extend(suite_names)
        return replace(self, traces=tuple(names))

    def with_prefetchers(self, *specs) -> "Experiment":
        """Replace the prefetcher axis (names, specs, or (name, dict))."""
        return replace(
            self, prefetchers=tuple(PrefetcherSpec.of(s) for s in specs)
        )

    def with_systems(self, *specs) -> "Experiment":
        """Replace the system axis (names, configs, specs, or pairs)."""
        return replace(self, systems=tuple(SystemSpec.of(s) for s in specs))

    def sweep_mtps(
        self, points: Iterable[int], base: str | SystemConfig = "1c"
    ) -> "Experiment":
        """System axis = *base* at each DRAM transfer rate (Fig 8b)."""
        from repro import registry

        base_config = registry.system(base)
        return replace(
            self,
            systems=tuple(
                SystemSpec(f"mtps={p}", base_config.with_mtps(p)) for p in points
            ),
        )

    def sweep_llc(
        self, factors: Iterable[float], base: str | SystemConfig = "1c"
    ) -> "Experiment":
        """System axis = *base* with the LLC scaled by each factor (Fig 8c)."""
        from repro import registry

        base_config = registry.system(base)
        return replace(
            self,
            systems=tuple(
                SystemSpec(f"llc_scale={f}", base_config.scaled_llc(f))
                for f in factors
            ),
        )

    def with_length(self, trace_length: int) -> "Experiment":
        """Set accesses per generated trace."""
        return replace(self, trace_length=trace_length)

    def with_warmup(self, warmup_fraction: float) -> "Experiment":
        """Set the warmup fraction."""
        return replace(self, warmup_fraction=warmup_fraction)

    def with_l1_prefetcher(self, spec) -> "Experiment":
        """Attach an L1 prefetcher to every cell (Fig 8d)."""
        return replace(
            self,
            l1_prefetcher=None if spec is None else PrefetcherSpec.of(spec),
        )

    # ---- expansion ------------------------------------------------------

    def cells(self) -> list[Cell]:
        """Expand the declarative cross product into work units."""
        if not self.traces:
            raise ValueError(f"experiment {self.name!r} has no traces")
        if not self.prefetchers:
            raise ValueError(f"experiment {self.name!r} has no prefetchers")
        if not self.systems:
            raise ValueError(f"experiment {self.name!r} has no systems")
        return [
            Cell(
                trace=trace,
                prefetcher=prefetcher,
                system=system,
                trace_length=self.trace_length,
                warmup_fraction=self.warmup_fraction,
                l1_prefetcher=self.l1_prefetcher,
            )
            for system in self.systems
            for trace in self.traces
            for prefetcher in self.prefetchers
        ]

    def __len__(self) -> int:
        return len(self.traces) * len(self.prefetchers) * len(self.systems)
