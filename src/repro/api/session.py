"""The Session facade: one front door for running experiments.

A :class:`Session` owns the three pluggable pieces of the execution
stack — a :class:`~repro.api.store.ResultStore` (durable, content-
addressed caching), an :class:`~repro.api.executors.Executor` (how
independent cells run), and per-session defaults (trace length, warmup)
— and exposes the workflows every caller needs:

* :meth:`Session.run` — expand a declarative
  :class:`~repro.api.experiment.Experiment` (single-core cells *and*
  multi-core mixes), simulate only the cells the store has never seen,
  and return a queryable :class:`~repro.api.resultset.ResultSet` with
  every record paired to its no-prefetching baseline.
* :meth:`Session.search` — declarative parameter searches
  (:mod:`repro.api.search`): grids of configuration points batched
  through the same executor/store path.
* :meth:`Session.run_one` / :meth:`Session.baseline` — single-cell
  conveniences used by the tuning loops.
* :meth:`Session.run_mix` — one multi-programmed mix, a thin wrapper
  over the declarative :class:`~repro.api.experiment.MixCell` path.

Everything is keyed by complete fingerprints, so two configs that differ
in *any* outcome-affecting field (L2 geometry, warmup fraction, Pythia
hyperparameters, ...) can never share a cache entry.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.executors import Executor, SerialExecutor
from repro.api.experiment import (
    Cell,
    Experiment,
    MixCell,
    PrefetcherSpec,
    SystemSpec,
    WorkCell,
    _trace_name,
)
from repro.api.fingerprint import canonical
from repro.api.resultset import CellResult, ResultSet
from repro.api.store import ResultStore
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult
from repro.sim.trace import Trace


class Session:
    """Facade tying together store, executor, and experiment expansion.

    Args:
        store: result cache; defaults to the persistent per-user store
            (:meth:`ResultStore.default`).  Pass ``ResultStore()`` for a
            memory-only session.
        executor: cell execution backend; defaults to
            :class:`SerialExecutor`.
        trace_length: default accesses per generated trace.
        warmup_fraction: default leading fraction excluded from stats.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        executor: Executor | None = None,
        trace_length: int = 20_000,
        warmup_fraction: float = 0.2,
    ) -> None:
        self.store = store if store is not None else ResultStore.default()
        self.executor: Executor = executor if executor is not None else SerialExecutor()
        self.trace_length = trace_length
        self.warmup_fraction = warmup_fraction

    # ---- building blocks -------------------------------------------------

    def experiment(self, name: str = "experiment") -> Experiment:
        """A fresh :class:`Experiment` seeded with this session's defaults."""
        return Experiment(
            name=name,
            trace_length=self.trace_length,
            warmup_fraction=self.warmup_fraction,
        )

    def trace(self, name: str, length: int | None = None) -> Trace:
        """Cached trace instantiation at the session (or given) length."""
        from repro import registry

        length = length if length is not None else self.trace_length
        return registry.cached_trace(name, length)

    def search(self, name: str = "search"):
        """A fresh declarative :class:`~repro.api.search.GridSearch`
        bound to this session (see :mod:`repro.api.search`)."""
        from repro.api.search import GridSearch

        return GridSearch(name=name, session=self)

    # ---- experiment execution -------------------------------------------

    def run(self, experiment: Experiment) -> ResultSet:
        """Run an experiment: cached cells come from the store, missing
        cells go through the executor (in parallel when it is one), and
        every record is paired with its same-fingerprint-scheme baseline.
        """
        cells = experiment.cells()
        keyed = [
            (cell, cell.fingerprint(), cell.baseline_cell()) for cell in cells
        ]

        # Work list: requested cells plus each cell's baseline, deduped
        # by fingerprint (a "none" cell is its own baseline).
        work: dict[str, WorkCell] = {}
        baseline_keys: dict[str, str] = {}  # cell key -> its baseline's key
        for cell, key, baseline in keyed:
            work.setdefault(key, cell)
            baseline_key = key if cell.is_baseline else baseline.fingerprint()
            baseline_keys[key] = baseline_key
            work.setdefault(baseline_key, baseline)

        results: dict[str, SimulationResult] = {}
        pending: list[tuple[str, WorkCell]] = []
        for key, cell in work.items():
            cached = self.store.get(key)
            if cached is not None:
                results[key] = cached
            else:
                pending.append((key, cell))

        if pending:
            outputs = self.executor.run_cells([cell for _, cell in pending])
            for (key, cell), output in zip(pending, outputs):
                self.store.put(key, output, meta=canonical(cell))
                results[key] = output

        records = [
            cell.record(results[key], results[baseline_keys[key]])
            for cell, key, _ in keyed
        ]
        return ResultSet(
            records,
            stats={
                "cells": len(work),
                "simulated": len(pending),
                "cached": len(work) - len(pending),
            },
        )

    def run_one(
        self,
        trace: str,
        prefetcher,
        system=None,
        l1_prefetcher=None,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
    ) -> CellResult:
        """Run a single (trace, prefetcher, system) cell.

        Accepts the same flexible specs as the experiment builder;
        *system* defaults to the paper's single-core baseline.
        """
        cell = Cell(
            trace=trace,
            prefetcher=PrefetcherSpec.of(prefetcher),
            system=SystemSpec.of(system if system is not None else "1c"),
            trace_length=trace_length if trace_length is not None else self.trace_length,
            warmup_fraction=(
                warmup_fraction if warmup_fraction is not None else self.warmup_fraction
            ),
            l1_prefetcher=(
                PrefetcherSpec.of(l1_prefetcher) if l1_prefetcher is not None else None
            ),
        )
        result = self._run_cell(cell)
        baseline = (
            result if cell.is_baseline else self._run_cell(cell.baseline_cell())
        )
        return cell.record(result, baseline)

    def baseline(
        self,
        trace: str,
        system=None,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
    ) -> SimulationResult:
        """The cached no-prefetching run of *trace* on *system*.

        Keyed by the complete cell fingerprint — trace length, warmup
        fraction, and the full system config (including L1/L2 geometry)
        all participate, so configs differing in any of them get
        distinct baselines.
        """
        return self.run_one(
            trace,
            "none",
            system=system,
            trace_length=trace_length,
            warmup_fraction=warmup_fraction,
        ).result

    def _run_cell(self, cell: WorkCell) -> SimulationResult:
        """Fetch-or-simulate one cell without executor overhead."""
        key = cell.fingerprint()
        cached = self.store.get(key)
        if cached is not None:
            return cached
        result = cell.execute()
        self.store.put(key, result, meta=canonical(cell))
        return result

    # ---- multi-core mixes -------------------------------------------------

    def mix_cell(
        self,
        traces: Sequence[Trace | str],
        prefetcher,
        system: SystemConfig | str | None = None,
        records_per_core: int | None = None,
        name: str | None = None,
    ) -> MixCell:
        """Build the declarative :class:`MixCell` for one mix.

        Traces may be names or materialized :class:`Trace` objects; only
        their registry-addressable names (and, for materialized traces,
        their common length) are kept, so the cell stays pure data.
        """
        names = tuple(_trace_name(t) for t in traces)
        lengths = {len(t) for t in traces if isinstance(t, Trace)}
        if len(lengths) > 1:
            raise ValueError(f"mix traces must share one length, got {sorted(lengths)}")
        return MixCell(
            name=name if name is not None else "+".join(names),
            traces=names,
            prefetcher=PrefetcherSpec.of(prefetcher),
            system=SystemSpec.of(system if system is not None else f"{len(names)}c"),
            trace_length=lengths.pop() if lengths else self.trace_length,
            warmup_fraction=self.warmup_fraction,
            records_per_core=records_per_core,
        )

    def run_mix(
        self,
        traces: Sequence[Trace | str],
        prefetcher,
        system: SystemConfig | str | None = None,
        records_per_core: int | None = None,
    ) -> tuple[SimulationResult, SimulationResult]:
        """Run one multi-programmed mix; returns (result, baseline).

        Thin convenience over the declarative cell path: builds a
        :class:`MixCell` and fetch-or-simulates it (plus its baseline)
        against the store.  Mix *sweeps* should go through
        :meth:`Experiment.with_mixes` + :meth:`run` instead, which
        batches independent mixes through the executor and returns a
        queryable :class:`ResultSet`.
        """
        cell = self.mix_cell(
            traces, prefetcher, system, records_per_core=records_per_core
        )
        result = self._run_cell(cell)
        baseline = (
            result if cell.is_baseline else self._run_cell(cell.baseline_cell())
        )
        return result, baseline
