"""The Session facade: one front door for running experiments.

A :class:`Session` owns the three pluggable pieces of the execution
stack — a :class:`~repro.api.store.ResultStore` (durable, content-
addressed caching), an :class:`~repro.api.executors.Executor` (how
independent cells run), and per-session defaults (trace length, warmup)
— and exposes the workflows every caller needs:

* :meth:`Session.run` — expand a declarative
  :class:`~repro.api.experiment.Experiment` (single-core cells *and*
  multi-core mixes), simulate only the cells the store has never seen,
  and return a queryable :class:`~repro.api.resultset.ResultSet` with
  every record paired to its no-prefetching baseline.
* :meth:`Session.search` — declarative parameter searches
  (:mod:`repro.api.search`): grids of configuration points batched
  through the same executor/store path.
* :meth:`Session.run_one` / :meth:`Session.baseline` — single-cell
  conveniences used by the tuning loops.
* :meth:`Session.run_mix` — one multi-programmed mix, a thin wrapper
  over the declarative :class:`~repro.api.experiment.MixCell` path.

Everything is keyed by complete fingerprints, so two configs that differ
in *any* outcome-affecting field (L2 geometry, warmup fraction, Pythia
hyperparameters, ...) can never share a cache entry.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.executors import Executor, SerialExecutor
from repro.api.experiment import (
    Cell,
    Experiment,
    MixCell,
    PrefetcherSpec,
    SystemSpec,
    WorkCell,
    _trace_name,
)
from repro.api.fingerprint import canonical
from repro.api.resultset import CellResult, ResultSet
from repro.api.store import ResultStore
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult
from repro.sim.trace import Trace


def _telemetry_missing(cell: WorkCell, cached: SimulationResult) -> bool:
    """Whether a cached result lacks the telemetry the cell requests.

    Telemetry is non-semantic (same fingerprint with or without), so a
    hit may predate the request — or carry rows at a different window.
    Such hits are re-simulated; the simulation is bit-identical, only
    the observation changes.
    """
    window = getattr(cell, "telemetry_window", 0)
    if not window:
        return False
    return cached.timeline is None or cached.timeline.get("window") != window


class Session:
    """Facade tying together store, executor, and experiment expansion.

    Args:
        store: result cache; defaults to the persistent per-user store
            (:meth:`ResultStore.default`).  Pass ``ResultStore()`` for a
            memory-only session.
        executor: cell execution backend; defaults to
            :class:`SerialExecutor`.
        trace_length: default accesses per generated trace.
        warmup_fraction: default leading fraction excluded from stats.
        checkpoint_every: checkpoint cadence in records; > 0 makes every
            single-core cell run resumable: mid-run
            :class:`~repro.sim.engine.EngineState` snapshots land in the
            store's checkpoint namespace (keyed by the cell's
            prefix fingerprint and records consumed), and a later run of
            the same cell at a longer ``trace_length`` resumes from the
            longest compatible snapshot instead of re-simulating from
            record zero.  With a persistent store and a
            :class:`~repro.api.executors.ProcessPoolExecutor`, the store
            path is shipped to the pool's workers so checkpointed cells
            fan out too; under a :class:`SerialExecutor` they execute
            in-session as before.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        executor: Executor | None = None,
        trace_length: int = 20_000,
        warmup_fraction: float = 0.2,
        checkpoint_every: int = 0,
    ) -> None:
        self.store = store if store is not None else ResultStore.default()
        self.executor: Executor = executor if executor is not None else SerialExecutor()
        self.trace_length = trace_length
        self.warmup_fraction = warmup_fraction
        self.checkpoint_every = checkpoint_every

    # ---- building blocks -------------------------------------------------

    def experiment(self, name: str = "experiment") -> Experiment:
        """A fresh :class:`Experiment` seeded with this session's defaults."""
        return Experiment(
            name=name,
            trace_length=self.trace_length,
            warmup_fraction=self.warmup_fraction,
        )

    def trace(self, name: str, length: int | None = None) -> Trace:
        """Cached trace instantiation at the session (or given) length."""
        from repro import registry

        length = length if length is not None else self.trace_length
        return registry.cached_trace(name, length)

    def search(self, name: str = "search"):
        """A fresh declarative :class:`~repro.api.search.GridSearch`
        bound to this session (see :mod:`repro.api.search`)."""
        from repro.api.search import GridSearch

        return GridSearch(name=name, session=self)

    # ---- experiment execution -------------------------------------------

    def run(self, experiment: Experiment) -> ResultSet:
        """Run an experiment: cached cells come from the store, missing
        cells go through the executor (in parallel when it is one), and
        every record is paired with its same-fingerprint-scheme baseline.
        """
        cells = experiment.cells()
        keyed = [
            (cell, cell.fingerprint(), cell.baseline_cell()) for cell in cells
        ]

        # Work list: requested cells plus each cell's baseline, deduped
        # by fingerprint (a "none" cell is its own baseline).  When a
        # telemetry-less baseline collides with an explicitly requested
        # "none" cell carrying a window, keep the windowed one — the
        # explicit record must get its rows, and serving the baseline
        # pairing from the same (row-carrying) result is harmless.
        work: dict[str, WorkCell] = {}
        baseline_keys: dict[str, str] = {}  # cell key -> its baseline's key

        def register(key: str, cell: WorkCell) -> None:
            existing = work.get(key)
            if existing is None or (
                existing.telemetry_window == 0 and cell.telemetry_window > 0
            ):
                work[key] = cell

        for cell, key, baseline in keyed:
            register(key, cell)
            baseline_key = key if cell.is_baseline else baseline.fingerprint()
            baseline_keys[key] = baseline_key
            register(baseline_key, baseline)

        results: dict[str, SimulationResult] = {}
        pending: list[tuple[str, WorkCell]] = []
        for key, cell in work.items():
            cached = self.store.get(key)
            if cached is not None and not _telemetry_missing(cell, cached):
                results[key] = cached
            else:
                pending.append((key, cell))

        # Checkpointed cells run in-session unless the executor's
        # workers can open the store themselves (a process pool
        # configured with the persistent store's path — auto-filled
        # below); then they fan out with everything else and resume
        # from / snapshot into the shared checkpoint namespace.
        executor = self.executor
        if (
            self.checkpoint_every > 0
            and self.store.persistent
            and getattr(executor, "store_path", False) is None
        ):
            executor.store_path = self.store.path
            executor.checkpoint_every = self.checkpoint_every
        pool_resumes = getattr(executor, "resumes_checkpoints", False)
        pooled: list[tuple[str, WorkCell]] = []
        for key, cell in pending:
            if self._checkpointable(cell) and not pool_resumes:
                result = cell.execute(
                    checkpoints=self.store.checkpoints(cell.prefix_fingerprint()),
                    checkpoint_every=self.checkpoint_every,
                )
                self.store.put(key, result, meta=canonical(cell))
                results[key] = result
            else:
                pooled.append((key, cell))

        if pooled:
            outputs = self.executor.run_cells([cell for _, cell in pooled])
            for (key, cell), output in zip(pooled, outputs):
                self.store.put(key, output, meta=canonical(cell))
                results[key] = output

        records = [
            cell.record(results[key], results[baseline_keys[key]])
            for cell, key, _ in keyed
        ]
        return ResultSet(
            records,
            stats={
                "cells": len(work),
                "simulated": len(pending),
                "cached": len(work) - len(pending),
            },
        )

    def run_one(
        self,
        trace: str,
        prefetcher,
        system=None,
        l1_prefetcher=None,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
        warmup_records: int | None = None,
        telemetry_window: int = 0,
    ) -> CellResult:
        """Run a single (trace, prefetcher, system) cell.

        Accepts the same flexible specs as the experiment builder;
        *system* defaults to the paper's single-core baseline.
        *warmup_records* pins the warmup split in absolute records
        (checkpoint-extension friendly); *telemetry_window* attaches the
        per-window timeline to the returned record.
        """
        cell = Cell(
            trace=trace,
            prefetcher=PrefetcherSpec.of(prefetcher),
            system=SystemSpec.of(system if system is not None else "1c"),
            trace_length=trace_length if trace_length is not None else self.trace_length,
            warmup_fraction=(
                warmup_fraction if warmup_fraction is not None else self.warmup_fraction
            ),
            l1_prefetcher=(
                PrefetcherSpec.of(l1_prefetcher) if l1_prefetcher is not None else None
            ),
            warmup_records=warmup_records,
            telemetry_window=telemetry_window,
        )
        result = self._run_cell(cell)
        baseline = (
            result if cell.is_baseline else self._run_cell(cell.baseline_cell())
        )
        return cell.record(result, baseline)

    def baseline(
        self,
        trace: str,
        system=None,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
    ) -> SimulationResult:
        """The cached no-prefetching run of *trace* on *system*.

        Keyed by the complete cell fingerprint — trace length, warmup
        fraction, and the full system config (including L1/L2 geometry)
        all participate, so configs differing in any of them get
        distinct baselines.
        """
        return self.run_one(
            trace,
            "none",
            system=system,
            trace_length=trace_length,
            warmup_fraction=warmup_fraction,
        ).result

    def _checkpointable(self, cell: WorkCell) -> bool:
        """Whether this cell's execution should checkpoint/resume.

        Single-core cells only (mixes have no resumable prefix), and
        only with telemetry off — a resumed run cannot reconstruct the
        skipped windows' telemetry rows.
        """
        return (
            self.checkpoint_every > 0
            and isinstance(cell, Cell)
            and cell.telemetry_window == 0
        )

    def _run_cell(self, cell: WorkCell) -> SimulationResult:
        """Fetch-or-simulate one cell without executor overhead.

        Resume-aware: with session checkpointing on, a store miss first
        looks for the longest compatible checkpoint under the cell's
        prefix fingerprint and simulates only the remaining records.  A
        cached result recorded without the telemetry the cell now
        requests is re-simulated (bit-identically) to obtain the rows.
        """
        key = cell.fingerprint()
        cached = self.store.get(key)
        if cached is not None and not _telemetry_missing(cell, cached):
            return cached
        if self._checkpointable(cell):
            result = cell.execute(
                checkpoints=self.store.checkpoints(cell.prefix_fingerprint()),
                checkpoint_every=self.checkpoint_every,
            )
        else:
            result = cell.execute()
        self.store.put(key, result, meta=canonical(cell))
        return result

    # ---- multi-core mixes -------------------------------------------------

    def mix_cell(
        self,
        traces: Sequence[Trace | str],
        prefetcher,
        system: SystemConfig | str | None = None,
        records_per_core: int | None = None,
        name: str | None = None,
    ) -> MixCell:
        """Build the declarative :class:`MixCell` for one mix.

        Traces may be names or materialized :class:`Trace` objects; only
        their registry-addressable names (and, for materialized traces,
        their common length) are kept, so the cell stays pure data.
        """
        names = tuple(_trace_name(t) for t in traces)
        lengths = {len(t) for t in traces if isinstance(t, Trace)}
        if len(lengths) > 1:
            raise ValueError(f"mix traces must share one length, got {sorted(lengths)}")
        return MixCell(
            name=name if name is not None else "+".join(names),
            traces=names,
            prefetcher=PrefetcherSpec.of(prefetcher),
            system=SystemSpec.of(system if system is not None else f"{len(names)}c"),
            trace_length=lengths.pop() if lengths else self.trace_length,
            warmup_fraction=self.warmup_fraction,
            records_per_core=records_per_core,
        )

    def run_mix(
        self,
        traces: Sequence[Trace | str],
        prefetcher,
        system: SystemConfig | str | None = None,
        records_per_core: int | None = None,
    ) -> tuple[SimulationResult, SimulationResult]:
        """Run one multi-programmed mix; returns (result, baseline).

        Thin convenience over the declarative cell path: builds a
        :class:`MixCell` and fetch-or-simulates it (plus its baseline)
        against the store.  Mix *sweeps* should go through
        :meth:`Experiment.with_mixes` + :meth:`run` instead, which
        batches independent mixes through the executor and returns a
        queryable :class:`ResultSet`.
        """
        cell = self.mix_cell(
            traces, prefetcher, system, records_per_core=records_per_core
        )
        result = self._run_cell(cell)
        baseline = (
            result if cell.is_baseline else self._run_cell(cell.baseline_cell())
        )
        return result, baseline
