"""The Session facade: one front door for running experiments.

A :class:`Session` owns the three pluggable pieces of the execution
stack — a :class:`~repro.api.store.ResultStore` (durable, content-
addressed caching), an :class:`~repro.api.executors.Executor` (how
independent cells run), and per-session defaults (trace length, warmup)
— and exposes the workflows every caller needs:

* :meth:`Session.run` — expand a declarative
  :class:`~repro.api.experiment.Experiment`, simulate only the cells the
  store has never seen, and return a queryable
  :class:`~repro.api.resultset.ResultSet` with every record paired to
  its no-prefetching baseline.
* :meth:`Session.run_one` / :meth:`Session.baseline` — single-cell
  conveniences used by the legacy ``Runner`` shim and the tuning loops.
* :meth:`Session.run_mix` — multi-core multi-programmed mixes, cached
  under the same fingerprint scheme.

Everything is keyed by complete fingerprints, so two configs that differ
in *any* outcome-affecting field (L2 geometry, warmup fraction, Pythia
hyperparameters, ...) can never share a cache entry.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.executors import Executor, SerialExecutor
from repro.api.experiment import (
    Cell,
    Experiment,
    PrefetcherSpec,
    SystemSpec,
    fingerprint_overrides,
)
from repro.api.fingerprint import canonical, fingerprint
from repro.api.resultset import CellResult, ResultSet
from repro.api.store import ResultStore
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult, simulate_multi
from repro.sim.trace import Trace


class Session:
    """Facade tying together store, executor, and experiment expansion.

    Args:
        store: result cache; defaults to the persistent per-user store
            (:meth:`ResultStore.default`).  Pass ``ResultStore()`` for a
            memory-only session.
        executor: cell execution backend; defaults to
            :class:`SerialExecutor`.
        trace_length: default accesses per generated trace.
        warmup_fraction: default leading fraction excluded from stats.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        executor: Executor | None = None,
        trace_length: int = 20_000,
        warmup_fraction: float = 0.2,
    ) -> None:
        self.store = store if store is not None else ResultStore.default()
        self.executor: Executor = executor if executor is not None else SerialExecutor()
        self.trace_length = trace_length
        self.warmup_fraction = warmup_fraction

    # ---- building blocks -------------------------------------------------

    def experiment(self, name: str = "experiment") -> Experiment:
        """A fresh :class:`Experiment` seeded with this session's defaults."""
        return Experiment(
            name=name,
            trace_length=self.trace_length,
            warmup_fraction=self.warmup_fraction,
        )

    def trace(self, name: str, length: int | None = None) -> Trace:
        """Cached trace instantiation at the session (or given) length."""
        from repro import registry

        length = length if length is not None else self.trace_length
        return registry.cached_trace(name, length)

    # ---- experiment execution -------------------------------------------

    def run(self, experiment: Experiment) -> ResultSet:
        """Run an experiment: cached cells come from the store, missing
        cells go through the executor (in parallel when it is one), and
        every record is paired with its same-fingerprint-scheme baseline.
        """
        if hasattr(experiment, "to_experiment"):  # legacy ExperimentSpec
            experiment = experiment.to_experiment()
        cells = experiment.cells()
        keyed = [
            (cell, cell.fingerprint(), cell.baseline_cell()) for cell in cells
        ]

        # Work list: requested cells plus each cell's baseline, deduped
        # by fingerprint (a "none" cell is its own baseline).
        work: dict[str, Cell] = {}
        baseline_keys: dict[str, str] = {}  # cell key -> its baseline's key
        for cell, key, baseline in keyed:
            work.setdefault(key, cell)
            baseline_key = key if cell.is_baseline else baseline.fingerprint()
            baseline_keys[key] = baseline_key
            work.setdefault(baseline_key, baseline)

        results: dict[str, SimulationResult] = {}
        pending: list[tuple[str, Cell]] = []
        for key, cell in work.items():
            cached = self.store.get(key)
            if cached is not None:
                results[key] = cached
            else:
                pending.append((key, cell))

        if pending:
            outputs = self.executor.run_cells([cell for _, cell in pending])
            for (key, cell), output in zip(pending, outputs):
                self.store.put(key, output, meta=canonical(cell))
                results[key] = output

        from repro import registry

        records = [
            CellResult(
                trace_name=results[key].trace_name,
                suite=registry.suite_of(cell.trace),
                prefetcher=cell.prefetcher.display,
                system=cell.system.label,
                result=results[key],
                baseline=results[baseline_keys[key]],
            )
            for cell, key, _ in keyed
        ]
        return ResultSet(
            records,
            stats={
                "cells": len(work),
                "simulated": len(pending),
                "cached": len(work) - len(pending),
            },
        )

    def run_one(
        self,
        trace: str,
        prefetcher,
        system=None,
        l1_prefetcher=None,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
    ) -> CellResult:
        """Run a single (trace, prefetcher, system) cell.

        Accepts the same flexible specs as the experiment builder;
        *system* defaults to the paper's single-core baseline.
        """
        from repro import registry

        cell = Cell(
            trace=trace,
            prefetcher=PrefetcherSpec.of(prefetcher),
            system=SystemSpec.of(system if system is not None else "1c"),
            trace_length=trace_length if trace_length is not None else self.trace_length,
            warmup_fraction=(
                warmup_fraction if warmup_fraction is not None else self.warmup_fraction
            ),
            l1_prefetcher=(
                PrefetcherSpec.of(l1_prefetcher) if l1_prefetcher is not None else None
            ),
        )
        result = self._run_cell(cell)
        baseline = (
            result if cell.is_baseline else self._run_cell(cell.baseline_cell())
        )
        return CellResult(
            trace_name=result.trace_name,
            suite=registry.suite_of(cell.trace),
            prefetcher=cell.prefetcher.display,
            system=cell.system.label,
            result=result,
            baseline=baseline,
        )

    def baseline(
        self,
        trace: str,
        system=None,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
    ) -> SimulationResult:
        """The cached no-prefetching run of *trace* on *system*.

        Keyed by the complete cell fingerprint — trace length, warmup
        fraction, and the full system config (including L1/L2 geometry)
        all participate, so configs differing in any of them get
        distinct baselines.
        """
        return self.run_one(
            trace,
            "none",
            system=system,
            trace_length=trace_length,
            warmup_fraction=warmup_fraction,
        ).result

    def _run_cell(self, cell: Cell) -> SimulationResult:
        """Fetch-or-simulate one cell without executor overhead."""
        from repro.api.executors import execute_cell

        key = cell.fingerprint()
        cached = self.store.get(key)
        if cached is not None:
            return cached
        result = execute_cell(cell)
        self.store.put(key, result, meta=canonical(cell))
        return result

    # ---- multi-core mixes -------------------------------------------------

    def run_mix(
        self,
        traces: Sequence[Trace | str],
        prefetcher,
        system: SystemConfig | str,
        records_per_core: int | None = None,
    ) -> tuple[SimulationResult, SimulationResult]:
        """Run a multi-programmed mix; returns (result, baseline).

        One trace per core against a shared LLC/DRAM, cached under a
        mix-kind fingerprint covering the trace identities and lengths,
        the prefetcher spec, the full system config, and the warmup.
        """
        from repro import registry

        materialized = [
            t if isinstance(t, Trace) else self.trace(t) for t in traces
        ]
        config = registry.system(system)
        spec = PrefetcherSpec.of(prefetcher)

        def mix_key(pf: PrefetcherSpec) -> str:
            # Same self-invalidation scheme as Cell.fingerprint: trace
            # content stamps plus the resolved prefetcher config.
            return fingerprint(
                {
                    "kind": "mix",
                    "traces": [
                        (t.name, len(t), t.content_stamp) for t in materialized
                    ],
                    "prefetcher": {
                        "name": pf.name,
                        "overrides": fingerprint_overrides(pf.overrides),
                        "resolved": registry.resolved_prefetcher_config(
                            pf.name, **dict(pf.overrides)
                        ),
                    },
                    "system": canonical(config),
                    "warmup_fraction": self.warmup_fraction,
                    "records_per_core": records_per_core,
                }
            )

        def run(pf: PrefetcherSpec) -> SimulationResult:
            key = mix_key(pf)
            cached = self.store.get(key)
            if cached is not None:
                return cached
            result = simulate_multi(
                list(materialized),
                config,
                prefetcher_factory=pf.build,
                warmup_fraction=self.warmup_fraction,
                records_per_core=records_per_core,
            )
            self.store.put(key, result)
            return result

        result = run(spec)
        baseline = result if spec.name == "none" else run(PrefetcherSpec("none"))
        return result, baseline
