"""The Session facade: one front door for running experiments.

A :class:`Session` owns the three pluggable pieces of the execution
stack — a :class:`~repro.api.store.ResultStore` (durable, content-
addressed caching), an :class:`~repro.api.executors.Executor` (how
independent cells run), and per-session defaults (trace length, warmup)
— and exposes the workflows every caller needs:

* :meth:`Session.run` — expand a declarative
  :class:`~repro.api.experiment.Experiment` (single-core cells *and*
  multi-core mixes), simulate only the cells the store has never seen,
  and return a queryable :class:`~repro.api.resultset.ResultSet` with
  every record paired to its no-prefetching baseline.
* :meth:`Session.search` — declarative parameter searches
  (:mod:`repro.api.search`): grids of configuration points batched
  through the same executor/store path.
* :meth:`Session.run_one` / :meth:`Session.baseline` — single-cell
  conveniences used by the tuning loops.
* :meth:`Session.run_mix` — one multi-programmed mix, a thin wrapper
  over the declarative :class:`~repro.api.experiment.MixCell` path.

Everything is keyed by complete fingerprints, so two configs that differ
in *any* outcome-affecting field (L2 geometry, warmup fraction, Pythia
hyperparameters, ...) can never share a cache entry.

Concurrency contract: one :class:`Session` may be shared by any number
of threads (the ``repro.serve`` arc's request handlers).  Concurrent
:meth:`Session.run` / :meth:`Session.run_one` calls are **single-flight
deduplicated** — an in-flight registry keyed by cell fingerprint
guarantees that two simultaneous requests for the same cell simulate it
exactly once, with every caller receiving the one result (store
``puts`` stays 1).  The registry and every other piece of session-shared
mutable state (the executor auto-configuration) are guarded by the
session lock; the ``concurrency`` lint rule machine-checks that no
mutation of the registry escapes the lock.
"""

from __future__ import annotations

import threading
from typing import Callable, Sequence

from repro.api.executors import Executor, SerialExecutor
from repro.api.experiment import (
    Cell,
    Experiment,
    MixCell,
    PrefetcherSpec,
    SystemSpec,
    WorkCell,
    _trace_name,
)
from repro.api.fingerprint import canonical
from repro.api.resultset import CellResult, ResultSet
from repro.api.store import ResultStore
from repro.sim.config import SystemConfig
from repro.sim.system import SimulationResult
from repro.sim.trace import Trace


def _telemetry_missing(cell: WorkCell, cached: SimulationResult) -> bool:
    """Whether a cached result lacks the telemetry the cell requests.

    Telemetry is non-semantic (same fingerprint with or without), so a
    hit may predate the request — or carry rows at a different window.
    Such hits are re-simulated; the simulation is bit-identical, only
    the observation changes.
    """
    window = getattr(cell, "telemetry_window", 0)
    if not window:
        return False
    return cached.timeline is None or cached.timeline.get("window") != window


class _InflightCell:
    """Single-flight registry entry: one simulation other callers await.

    The owning thread simulates, stores the result here, and sets
    ``done``; waiters block on the event and adopt ``result``.  A
    ``None`` result after ``done`` means the owner failed (its exception
    propagates in *its* thread) — waiters retry rather than inheriting
    an error they did not cause.
    """

    __slots__ = ("done", "result")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: SimulationResult | None = None


class Session:
    """Facade tying together store, executor, and experiment expansion.

    Args:
        store: result cache; defaults to the persistent per-user store
            (:meth:`ResultStore.default`).  Pass ``ResultStore()`` for a
            memory-only session.
        executor: cell execution backend; defaults to
            :class:`SerialExecutor`.
        trace_length: default accesses per generated trace.
        warmup_fraction: default leading fraction excluded from stats.
        checkpoint_every: checkpoint cadence in records; > 0 makes every
            single-core cell run resumable: mid-run
            :class:`~repro.sim.engine.EngineState` snapshots land in the
            store's checkpoint namespace (keyed by the cell's
            prefix fingerprint and records consumed), and a later run of
            the same cell at a longer ``trace_length`` resumes from the
            longest compatible snapshot instead of re-simulating from
            record zero.  With a persistent store and a
            :class:`~repro.api.executors.ProcessPoolExecutor`, the store
            path is shipped to the pool's workers so checkpointed cells
            fan out too; under a :class:`SerialExecutor` they execute
            in-session as before.
    """

    def __init__(
        self,
        store: ResultStore | None = None,
        executor: Executor | None = None,
        trace_length: int = 20_000,
        warmup_fraction: float = 0.2,
        checkpoint_every: int = 0,
    ) -> None:
        self.store = store if store is not None else ResultStore.default()
        self.executor: Executor = executor if executor is not None else SerialExecutor()
        self.trace_length = trace_length
        self.warmup_fraction = warmup_fraction
        self.checkpoint_every = checkpoint_every
        #: Guards every piece of session-shared mutable state below —
        #: the single-flight registry and the one-shot executor
        #: auto-configuration.  The ``concurrency`` lint rule enforces
        #: that ``_inflight`` is only ever mutated under this lock.
        self._lock = threading.RLock()
        #: Cell fingerprint → in-flight simulation other threads join
        #: instead of re-simulating (single-flight deduplication).
        self._inflight: dict[str, _InflightCell] = {}

    # ---- building blocks -------------------------------------------------

    def experiment(self, name: str = "experiment") -> Experiment:
        """A fresh :class:`Experiment` seeded with this session's defaults."""
        return Experiment(
            name=name,
            trace_length=self.trace_length,
            warmup_fraction=self.warmup_fraction,
        )

    def trace(self, name: str, length: int | None = None) -> Trace:
        """Cached trace instantiation at the session (or given) length."""
        from repro import registry

        length = length if length is not None else self.trace_length
        return registry.cached_trace(name, length)

    def search(self, name: str = "search"):
        """A fresh declarative :class:`~repro.api.search.GridSearch`
        bound to this session (see :mod:`repro.api.search`)."""
        from repro.api.search import GridSearch

        return GridSearch(name=name, session=self)

    # ---- single-flight deduplication ------------------------------------

    def _claim(self, key: str) -> tuple[_InflightCell, bool]:
        """Join or open the in-flight entry for *key*.

        Returns ``(entry, owner)``: the owner registered a fresh entry
        and must simulate (then :meth:`_resolve`); a non-owner waits on
        the existing entry instead of duplicating the simulation.
        """
        with self._lock:
            flight = self._inflight.get(key)
            if flight is not None:
                return flight, False
            flight = _InflightCell()
            self._inflight[key] = flight
            return flight, True

    def _resolve(
        self, key: str, flight: _InflightCell, result: SimulationResult | None
    ) -> None:
        """Publish the owner's outcome and release the claim on *key*."""
        with self._lock:
            self._inflight.pop(key, None)
        flight.result = result
        flight.done.set()

    def _execute_cell(self, cell: WorkCell) -> SimulationResult:
        """Simulate one cell in-session, checkpoint-aware."""
        if self._checkpointable(cell):
            return cell.execute(
                checkpoints=self.store.checkpoints(cell.prefix_fingerprint()),
                checkpoint_every=self.checkpoint_every,
            )
        return cell.execute()

    def _fetch_or_simulate(
        self,
        key: str,
        cell: WorkCell,
        simulate: Callable[[], SimulationResult],
    ) -> SimulationResult:
        """Store hit, joined in-flight simulation, or owned simulation.

        The claim is taken *before* the store lookup: an owner that
        claims and then hits the store resolves instantly, while the
        claim-first ordering closes the race where another thread's
        simulation completes (store put, registry removal) between our
        miss and our claim — whoever claims after a resolve always
        re-reads the store and sees the put.  Waiters whose owner
        failed, or whose result lacks the telemetry this cell needs,
        loop and try again rather than erroring.
        """
        while True:
            flight, owner = self._claim(key)
            if not owner:
                flight.done.wait()
                result = flight.result
                if result is not None and not _telemetry_missing(cell, result):
                    return result
                continue
            try:
                cached = self.store.get(key)
                if cached is not None and not _telemetry_missing(cell, cached):
                    self._resolve(key, flight, cached)
                    return cached
                result = simulate()
                self.store.put(key, result, meta=canonical(cell))
            except BaseException:
                self._resolve(key, flight, None)
                raise
            self._resolve(key, flight, result)
            return result

    # ---- experiment execution -------------------------------------------

    def run(self, experiment: Experiment) -> ResultSet:
        """Run an experiment: cached cells come from the store, missing
        cells go through the executor (in parallel when it is one), and
        every record is paired with its same-fingerprint-scheme baseline.

        Safe to call from multiple threads on one session: every cell is
        single-flight deduplicated, so overlapping concurrent runs
        simulate each distinct fingerprint once and share the result.
        """
        cells = experiment.cells()
        keyed = [
            (cell, cell.fingerprint(), cell.baseline_cell()) for cell in cells
        ]

        # Work list: requested cells plus each cell's baseline, deduped
        # by fingerprint (a "none" cell is its own baseline).  When a
        # telemetry-less baseline collides with an explicitly requested
        # "none" cell carrying a window, keep the windowed one — the
        # explicit record must get its rows, and serving the baseline
        # pairing from the same (row-carrying) result is harmless.
        work: dict[str, WorkCell] = {}
        baseline_keys: dict[str, str] = {}  # cell key -> its baseline's key

        def register(key: str, cell: WorkCell) -> None:
            existing = work.get(key)
            if existing is None or (
                existing.telemetry_window == 0 and cell.telemetry_window > 0
            ):
                work[key] = cell

        for cell, key, baseline in keyed:
            register(key, cell)
            baseline_key = key if cell.is_baseline else baseline.fingerprint()
            baseline_keys[key] = baseline_key
            register(baseline_key, baseline)

        # Checkpointed cells run in-session unless the executor's
        # workers can open the store themselves (a process pool
        # configured with the persistent store's path — auto-filled
        # below); then they fan out with everything else and resume
        # from / snapshot into the shared checkpoint namespace.  The
        # one-shot auto-configuration mutates the (session-shared)
        # executor, so it runs under the session lock.
        executor = self.executor
        with self._lock:
            if (
                self.checkpoint_every > 0
                and self.store.persistent
                and getattr(executor, "store_path", False) is None
            ):
                executor.store_path = self.store.path
                executor.checkpoint_every = self.checkpoint_every
            pool_resumes = getattr(executor, "resumes_checkpoints", False)

        # Partition the work: store hits resolve immediately; claimed
        # misses ("owned") are ours to simulate; cells already in
        # flight on another thread ("joined") are awaited at the end,
        # *after* our own simulations, so concurrent overlapping runs
        # can never deadlock on each other.
        results: dict[str, SimulationResult] = {}
        owned: list[tuple[str, WorkCell, _InflightCell]] = []
        joined: list[tuple[str, WorkCell, _InflightCell]] = []
        for key, cell in work.items():
            flight, is_owner = self._claim(key)
            if not is_owner:
                joined.append((key, cell, flight))
                continue
            cached = self.store.get(key)
            if cached is not None and not _telemetry_missing(cell, cached):
                self._resolve(key, flight, cached)
                results[key] = cached
            else:
                owned.append((key, cell, flight))

        try:
            pooled: list[tuple[str, WorkCell, _InflightCell]] = []
            for key, cell, flight in owned:
                if self._checkpointable(cell) and not pool_resumes:
                    result = self._execute_cell(cell)
                    self.store.put(key, result, meta=canonical(cell))
                    self._resolve(key, flight, result)
                    results[key] = result
                else:
                    pooled.append((key, cell, flight))
            if pooled:
                outputs = executor.run_cells([cell for _, cell, _ in pooled])
                for (key, cell, flight), output in zip(pooled, outputs):
                    self.store.put(key, output, meta=canonical(cell))
                    self._resolve(key, flight, output)
                    results[key] = output
        except BaseException:
            # Release every claim this run still holds so concurrent
            # callers waiting on our cells retry instead of hanging.
            for key, _, flight in owned:
                if not flight.done.is_set():
                    self._resolve(key, flight, None)
            raise

        for key, cell, flight in joined:
            flight.done.wait()
            result = flight.result
            if result is None or _telemetry_missing(cell, result):
                # The other thread's owner failed or produced a result
                # without our telemetry rows: fetch-or-simulate ourselves.
                result = self._fetch_or_simulate(
                    key, cell, lambda cell=cell: self._execute_cell(cell)
                )
            results[key] = result

        records = [
            cell.record(results[key], results[baseline_keys[key]])
            for cell, key, _ in keyed
        ]
        return ResultSet(
            records,
            stats={
                "cells": len(work),
                "simulated": len(owned),
                "cached": len(work) - len(owned),
            },
        )

    def run_one(
        self,
        trace: str,
        prefetcher,
        system=None,
        l1_prefetcher=None,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
        warmup_records: int | None = None,
        telemetry_window: int = 0,
    ) -> CellResult:
        """Run a single (trace, prefetcher, system) cell.

        Accepts the same flexible specs as the experiment builder;
        *system* defaults to the paper's single-core baseline.
        *warmup_records* pins the warmup split in absolute records
        (checkpoint-extension friendly); *telemetry_window* attaches the
        per-window timeline to the returned record.
        """
        cell = Cell(
            trace=trace,
            prefetcher=PrefetcherSpec.of(prefetcher),
            system=SystemSpec.of(system if system is not None else "1c"),
            trace_length=trace_length if trace_length is not None else self.trace_length,
            warmup_fraction=(
                warmup_fraction if warmup_fraction is not None else self.warmup_fraction
            ),
            l1_prefetcher=(
                PrefetcherSpec.of(l1_prefetcher) if l1_prefetcher is not None else None
            ),
            warmup_records=warmup_records,
            telemetry_window=telemetry_window,
        )
        result = self._run_cell(cell)
        baseline = (
            result if cell.is_baseline else self._run_cell(cell.baseline_cell())
        )
        return cell.record(result, baseline)

    def baseline(
        self,
        trace: str,
        system=None,
        trace_length: int | None = None,
        warmup_fraction: float | None = None,
    ) -> SimulationResult:
        """The cached no-prefetching run of *trace* on *system*.

        Keyed by the complete cell fingerprint — trace length, warmup
        fraction, and the full system config (including L1/L2 geometry)
        all participate, so configs differing in any of them get
        distinct baselines.
        """
        return self.run_one(
            trace,
            "none",
            system=system,
            trace_length=trace_length,
            warmup_fraction=warmup_fraction,
        ).result

    def _checkpointable(self, cell: WorkCell) -> bool:
        """Whether this cell's execution should checkpoint/resume.

        Single-core cells only (mixes have no resumable prefix), and
        only with telemetry off — a resumed run cannot reconstruct the
        skipped windows' telemetry rows.
        """
        return (
            self.checkpoint_every > 0
            and isinstance(cell, Cell)
            and cell.telemetry_window == 0
        )

    def _run_cell(self, cell: WorkCell) -> SimulationResult:
        """Fetch-or-simulate one cell without executor overhead.

        Resume-aware: with session checkpointing on, a store miss first
        looks for the longest compatible checkpoint under the cell's
        prefix fingerprint and simulates only the remaining records.  A
        cached result recorded without the telemetry the cell now
        requests is re-simulated (bit-identically) to obtain the rows.
        Single-flight: a concurrent run of the same cell (from this or
        any other thread sharing the session) joins the in-flight
        simulation instead of duplicating it.
        """
        key = cell.fingerprint()
        return self._fetch_or_simulate(
            key, cell, lambda: self._execute_cell(cell)
        )

    # ---- multi-core mixes -------------------------------------------------

    def mix_cell(
        self,
        traces: Sequence[Trace | str],
        prefetcher,
        system: SystemConfig | str | None = None,
        records_per_core: int | None = None,
        name: str | None = None,
    ) -> MixCell:
        """Build the declarative :class:`MixCell` for one mix.

        Traces may be names or materialized :class:`Trace` objects; only
        their registry-addressable names (and, for materialized traces,
        their common length) are kept, so the cell stays pure data.
        """
        names = tuple(_trace_name(t) for t in traces)
        lengths = {len(t) for t in traces if isinstance(t, Trace)}
        if len(lengths) > 1:
            raise ValueError(f"mix traces must share one length, got {sorted(lengths)}")
        return MixCell(
            name=name if name is not None else "+".join(names),
            traces=names,
            prefetcher=PrefetcherSpec.of(prefetcher),
            system=SystemSpec.of(system if system is not None else f"{len(names)}c"),
            trace_length=lengths.pop() if lengths else self.trace_length,
            warmup_fraction=self.warmup_fraction,
            records_per_core=records_per_core,
        )

    def run_mix(
        self,
        traces: Sequence[Trace | str],
        prefetcher,
        system: SystemConfig | str | None = None,
        records_per_core: int | None = None,
    ) -> tuple[SimulationResult, SimulationResult]:
        """Run one multi-programmed mix; returns (result, baseline).

        Thin convenience over the declarative cell path: builds a
        :class:`MixCell` and fetch-or-simulates it (plus its baseline)
        against the store.  Mix *sweeps* should go through
        :meth:`Experiment.with_mixes` + :meth:`run` instead, which
        batches independent mixes through the executor and returns a
        queryable :class:`ResultSet`.
        """
        cell = self.mix_cell(
            traces, prefetcher, system, records_per_core=records_per_core
        )
        result = self._run_cell(cell)
        baseline = (
            result if cell.is_baseline else self._run_cell(cell.baseline_cell())
        )
        return result, baseline
