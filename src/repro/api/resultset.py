"""Typed result sets with group / pivot / rollup queries.

A :class:`ResultSet` is what :meth:`repro.api.Session.run` returns: an
ordered collection of :class:`CellResult` records, each pairing one
measurement with its no-prefetching baseline (every metric in the paper
is relative to that baseline).  Multi-core mixes appear as
:class:`MixCellResult` records — mix-level for the rollups, with the
per-core breakdown via :meth:`ResultSet.per_core_rows`.  The query
methods replace the hand-rolled aggregation loops the figure builders
and benchmarks used to carry:

* :meth:`ResultSet.filter` / :meth:`ResultSet.where` — subset selection;
* :meth:`ResultSet.group` — split by a key into sub-sets;
* :meth:`ResultSet.rollup` — nested dict aggregation over any key chain
  (``rollup("suite", "prefetcher")`` is Fig 9a's pivot);
* :meth:`ResultSet.pivot` — two-axis convenience over :meth:`rollup`;
* :meth:`ResultSet.table` — plain-text rendering for bench output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.sim.engine import Phase, Timeline
from repro.sim.metrics import coverage, geomean, overprediction, speedup
from repro.sim.system import SimulationResult


def _mean(vals: Sequence[float]) -> float:
    return sum(vals) / len(vals) if vals else 0.0


def _std(vals: Sequence[float]) -> float:
    """Sample standard deviation (n-1 denominator); 0.0 below 2 samples."""
    n = len(vals)
    if n < 2:
        return 0.0
    mean = sum(vals) / n
    return math.sqrt(sum((v - mean) ** 2 for v in vals) / (n - 1))


#: Two-sided 95% Student-t critical values by degrees of freedom
#: (standard table; beyond 30 the normal 1.96 is used).
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447, 7: 2.365,
    8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179, 13: 2.160,
    14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093,
    20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def _ci95(vals: Sequence[float]) -> float:
    """Half-width of the 95% confidence interval of the mean.

    Student-t based (the seed counts in replicated experiments are
    small); 0.0 below 2 samples.
    """
    n = len(vals)
    if n < 2:
        return 0.0
    return _T95.get(n - 1, 1.960) * _std(vals) / math.sqrt(n)


#: Aggregations usable in rollup/pivot queries.  ``std``/``ci95`` are
#: what replicated experiments (:meth:`Experiment.with_seeds`) report
#: variance with.
_AGGREGATIONS: dict[str, Callable[[Sequence[float]], float]] = {
    "geomean": geomean,
    "mean": _mean,
    "std": _std,
    "ci95": _ci95,
    "min": min,
    "max": max,
}


@dataclass
class CellResult:
    """One measured cell paired with its baseline.

    For replicated cells (:meth:`Experiment.with_seeds`),
    ``trace_name`` is the *base* workload name shared by every replicate
    and ``seed`` identifies the replicate; unreplicated cells carry
    ``seed=None``.
    """

    trace_name: str
    suite: str
    prefetcher: str
    system: str
    result: SimulationResult
    baseline: SimulationResult
    seed: int | None = None

    @property
    def speedup(self) -> float:
        """IPC over the no-prefetching baseline."""
        return speedup(self.result, self.baseline)

    @property
    def coverage(self) -> float:
        """Fraction of baseline LLC load misses eliminated."""
        return coverage(self.result, self.baseline)

    @property
    def overprediction(self) -> float:
        """Extra DRAM reads per baseline DRAM read."""
        return overprediction(self.result, self.baseline)

    @property
    def ipc(self) -> float:
        """Raw IPC of the measured run."""
        return self.result.ipc

    def metric(self, name: str) -> float:
        """Look up a metric by name (``"speedup"``, ``"coverage"``, ...)."""
        return getattr(self, name)

    def timeline(self) -> Timeline:
        """The per-window telemetry of the measured run.

        Empty unless the producing experiment requested telemetry
        (:meth:`Experiment.with_telemetry
        <repro.api.experiment.Experiment.with_telemetry>`).
        """
        return Timeline.from_payload(self.result.timeline)

    def phases(self, metric: str = "ipc", rel_tol: float = 0.25) -> list[Phase]:
        """Phase segmentation of the measured (post-warmup) timeline."""
        return self.timeline().phases(metric=metric, rel_tol=rel_tol)


@dataclass
class MixCellResult(CellResult):
    """One multi-programmed mix paired with its baseline.

    ``trace_name`` is the mix label and ``suite`` is ``"MIX"``, so the
    usual group/pivot/rollup queries give mix-level rollups; the
    per-core breakdown is available via :meth:`per_core`.
    """

    traces: tuple[str, ...] = ()

    @property
    def per_core_speedups(self) -> list[float]:
        """Per-core IPC over the same core's no-prefetching IPC."""
        return [
            ipc / base if base > 0 else 0.0
            for ipc, base in zip(
                self.result.per_core_ipc, self.baseline.per_core_ipc
            )
        ]

    def per_core(self) -> list[dict]:
        """Per-core record rows: core index, trace, IPCs, speedup."""
        return [
            {
                "mix": self.trace_name,
                "core": core,
                "trace": trace,
                "prefetcher": self.prefetcher,
                "system": self.system,
                "ipc": ipc,
                "baseline_ipc": base,
                "speedup": ipc / base if base > 0 else 0.0,
            }
            for core, (trace, ipc, base) in enumerate(
                zip(
                    self.traces,
                    self.result.per_core_ipc,
                    self.baseline.per_core_ipc,
                )
            )
        ]


class ResultSet:
    """Ordered collection of :class:`CellResult` with query helpers."""

    def __init__(
        self,
        records: Iterable[CellResult],
        stats: dict[str, int] | None = None,
    ) -> None:
        self.records: list[CellResult] = list(records)
        #: Execution statistics from the producing run
        #: (``cells`` / ``simulated`` / ``cached``).
        self.stats: dict[str, int] = stats or {}

    # ---- sequence protocol ----------------------------------------------

    def __iter__(self) -> Iterator[CellResult]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return ResultSet(self.records[index], self.stats)
        return self.records[index]

    def __repr__(self) -> str:
        return f"ResultSet({len(self.records)} records, stats={self.stats})"

    # ---- selection ------------------------------------------------------

    def filter(self, **equals) -> "ResultSet":
        """Records whose attributes equal every given value."""
        return ResultSet(
            r
            for r in self.records
            if all(getattr(r, key) == value for key, value in equals.items())
        )

    def where(self, predicate: Callable[[CellResult], bool]) -> "ResultSet":
        """Records satisfying an arbitrary predicate."""
        return ResultSet(r for r in self.records if predicate(r))

    def group(self, key: str) -> dict[str, "ResultSet"]:
        """Split into sub-sets by an attribute, insertion-ordered."""
        groups: dict[str, list[CellResult]] = {}
        for record in self.records:
            groups.setdefault(getattr(record, key), []).append(record)
        return {value: ResultSet(records) for value, records in groups.items()}

    # ---- aggregation ----------------------------------------------------

    def values(self, metric: str = "speedup") -> list[float]:
        """The metric's value for every record, in order."""
        return [record.metric(metric) for record in self.records]

    def geomean(self, metric: str = "speedup") -> float:
        """Geometric mean of a metric across all records."""
        return geomean(self.values(metric))

    def mean(self, metric: str = "speedup") -> float:
        """Arithmetic mean of a metric across all records."""
        return _AGGREGATIONS["mean"](self.values(metric))

    def std(self, metric: str = "speedup") -> float:
        """Sample standard deviation of a metric across all records."""
        return _std(self.values(metric))

    def ci95(self, metric: str = "speedup") -> float:
        """95% CI half-width of the metric's mean (Student-t)."""
        return _ci95(self.values(metric))

    def summary(self, metric: str = "speedup") -> dict[str, float]:
        """``{"mean", "std", "ci95", "n"}`` of a metric — the error-bar
        record for one group of seed replicates."""
        values = self.values(metric)
        return {
            "mean": _mean(values),
            "std": _std(values),
            "ci95": _ci95(values),
            "n": len(values),
        }

    def rollup(
        self, *keys: str, metric: str = "speedup", agg: str = "geomean"
    ):
        """Nested aggregation: ``rollup("suite", "prefetcher")`` returns
        ``{suite: {prefetcher: geomean speedup}}``; zero keys reduce to a
        scalar.  With seed-replicated records, ``agg="std"``/``"ci95"``
        measure seed noise only when the group holds one workload's
        replicates — include ``"trace_name"`` in the key chain (its
        replicates share that name); coarser groups also fold in
        cross-workload spread."""
        if agg not in _AGGREGATIONS:
            raise KeyError(f"unknown aggregation {agg!r}; known: {sorted(_AGGREGATIONS)}")
        if not keys:
            return _AGGREGATIONS[agg](self.values(metric))
        head, *rest = keys
        return {
            value: subset.rollup(*rest, metric=metric, agg=agg)
            for value, subset in self.group(head).items()
        }

    def pivot(
        self,
        rows: str,
        cols: str,
        metric: str = "speedup",
        agg: str = "geomean",
    ) -> dict[str, dict[str, float]]:
        """Two-axis rollup: ``{row_value: {col_value: aggregate}}``."""
        return self.rollup(rows, cols, metric=metric, agg=agg)

    def to_rows(self, *metrics: str) -> list[dict]:
        """Flat dict rows (default metrics: speedup/coverage/overprediction)."""
        metric_names = metrics or ("speedup", "coverage", "overprediction")
        return [
            {
                "trace": record.trace_name,
                "suite": record.suite,
                "prefetcher": record.prefetcher,
                "system": record.system,
                "seed": record.seed,
                **{name: record.metric(name) for name in metric_names},
            }
            for record in self.records
        ]

    def timeline_rows(self) -> list[dict]:
        """Flattened per-window telemetry rows of every record in the set.

        One dict per (record, window) with the record's identity keys
        (trace/suite/prefetcher/system) joined onto the window's
        counters plus its ``ipc`` — the figure-builder shape for
        phase-behaviour plots.  Records without telemetry contribute
        nothing.
        """
        rows: list[dict] = []
        for record in self.records:
            for row in record.timeline():
                rows.append(
                    {
                        "trace": record.trace_name,
                        "suite": record.suite,
                        "prefetcher": record.prefetcher,
                        "system": record.system,
                        "window": row.index,
                        "start_record": row.start_record,
                        "end_record": row.end_record,
                        "warmup": row.warmup,
                        "ipc": row.ipc,
                        "instructions": row.instructions,
                        "cycles": row.cycles,
                        "llc_demand_hits": row.llc_demand_hits,
                        "llc_load_misses": row.llc_load_misses,
                        "dram_reads": row.dram_reads,
                        "dram_prefetch_reads": row.dram_prefetch_reads,
                        "prefetches_issued": row.prefetches_issued,
                        "useful_prefetches": row.useful_prefetches,
                        "useless_prefetches": row.useless_prefetches,
                        "late_prefetch_merges": row.late_prefetch_merges,
                        "bw_buckets": row.bw_buckets,
                    }
                )
        return rows

    def per_core_rows(self) -> list[dict]:
        """Flattened per-core rows of every mix record in the set.

        Single-core records contribute nothing; each
        :class:`MixCellResult` contributes one row per core.
        """
        rows: list[dict] = []
        for record in self.records:
            per_core = getattr(record, "per_core", None)
            if per_core is not None:
                rows.extend(per_core())
        return rows

    def table(
        self,
        rows: str = "trace_name",
        cols: str = "prefetcher",
        metric: str = "speedup",
        agg: str = "geomean",
        fmt: str = "{:.3f}",
    ) -> str:
        """Plain-text pivot table (the bench/figure printer)."""
        from repro.harness.rollup import format_table

        pivoted = self.pivot(rows, cols, metric=metric, agg=agg)
        col_values = list(dict.fromkeys(c for by_col in pivoted.values() for c in by_col))
        body = [
            [row_value]
            + [
                fmt.format(by_col[c]) if c in by_col else "-"
                for c in col_values
            ]
            for row_value, by_col in pivoted.items()
        ]
        return format_table([rows, *col_values], body)
