"""Content-addressed, disk-persistent result store.

Results are keyed by the *complete* fingerprint of the work that
produced them (see :meth:`repro.api.experiment.Cell.fingerprint`), so a
hit is guaranteed to be byte-equivalent to re-simulating.  The store is
two-layered:

* an in-memory dict (so repeated lookups within a session return the
  same object — the behaviour the historical runner's memoization
  provided);
* an optional on-disk layer of one JSON file per result, sharded by
  fingerprint prefix, written atomically so concurrent writers (process
  pools, parallel pytest) never corrupt each other.

Construct with ``path=None`` for a memory-only store (unit tests,
benchmark timing), or :meth:`ResultStore.default` for the shared
per-user cache honouring ``REPRO_CACHE_DIR``.

Beside the result layer lives the **checkpoint namespace**: mid-run
:class:`~repro.sim.engine.EngineState` snapshots keyed by a cell's
*prefix fingerprint* (the cell fingerprint minus ``trace_length``; see
:meth:`repro.api.experiment.Cell.prefix_fingerprint`) and the number of
records consumed.  Unlike results — complete, byte-equivalent answers —
checkpoints are *partial work*: extending ``pythia @ 100k`` to ``200k``
resumes from the 100k snapshot instead of re-simulating from record
zero.  Checkpoints are pickled (they carry live simulator state), can be
large, and are therefore governed by a size cap with oldest-first
eviction rather than kept forever.

Concurrency contract (see README "Concurrency contract"):

* **Threads in one process** — every public method is safe to call from
  any number of threads on one store instance.  A per-store
  :class:`threading.RLock` guards the memory layers and the stat
  counters; :attr:`stats` returns a consistent snapshot taken under it.
  Disk I/O happens outside the lock, so slow writes never serialize
  unrelated lookups.
* **Processes on one box** — single-file writes are crash-safe
  tmp-file + fsync + atomic-rename (tmp names carry pid *and* thread
  id, so writers never collide); multi-step critical sections that
  scan-then-mutate the tree (checkpoint eviction, disk-footprint
  re-sync, :meth:`clear`) additionally hold an advisory ``fcntl`` lock
  on a per-store ``.lock`` file.
* **Shared NFS** — atomic rename holds, but advisory locking may not;
  the file lock degrades to best-effort and eviction accounting
  self-heals via re-scan, so the worst case is transient over-cap
  footprint, never corruption.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any

try:  # pragma: no cover - always present on POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

from repro.sim.system import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import EngineState

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default ceiling on the on-disk (or in-memory) checkpoint footprint.
DEFAULT_CHECKPOINT_CAP = 256 * 1024 * 1024


def _tmp_name(path: Path) -> Path:
    """A writer-unique sibling tmp path.

    The suffix carries pid *and* thread id so concurrent writers —
    pool workers, serve-layer threads, parallel pytest — can stage
    the same artifact simultaneously without sharing a tmp file.
    """
    return path.with_suffix(f".tmp.{os.getpid()}-{threading.get_ident()}")


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a completed rename survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - unopenable parent directory
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync-less filesystem
        # Directory fsync is unsupported on some filesystems; the
        # rename itself is still atomic, only crash-durability narrows.
        return
    finally:
        os.close(fd)


def _atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* crash-safely: tmp file, fsync, rename.

    Every persisted store artifact must go through one of the
    ``_atomic_write_*`` helpers — the ``concurrency`` lint rule rejects
    raw file writes anywhere else in this module.  The tmp name is
    writer-unique (pid + thread id) and the data is fsync'd before the
    atomic rename, so a reader never observes a torn file and a crash
    between write and rename leaves only a sweepable ``*.tmp.*`` orphan.
    """
    tmp = _tmp_name(path)
    try:
        with tmp.open("w") as f:
            f.write(text)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except FileNotFoundError:
        # A concurrent clear() swept our tmp file mid-write.  The store
        # was being emptied, so this artifact would have been dropped a
        # moment later anyway — losing the write is the correct outcome,
        # and everything persisted here is re-derivable.
        tmp.unlink(missing_ok=True)
        return
    except BaseException:  # pragma: no cover - failed mid-write cleanup
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)


def _atomic_write_pickle(path: Path, obj: Any) -> None:
    """Pickle *obj* to *path* crash-safely: tmp file, fsync, rename."""
    tmp = _tmp_name(path)
    try:
        with tmp.open("wb") as f:
            pickle.dump(obj, f, protocol=pickle.HIGHEST_PROTOCOL)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except FileNotFoundError:
        # Swept by a concurrent clear() mid-write; see
        # _atomic_write_text — dropping the write is correct.
        tmp.unlink(missing_ok=True)
        return
    except BaseException:  # pragma: no cover - failed mid-write cleanup
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)


class _CrossProcessLock:
    """Advisory inter-process lock on a per-store ``.lock`` file.

    Guards multi-step critical sections (scan → decide → unlink) that
    atomic single-file renames cannot make safe on their own.  POSIX
    record locks are per-process, so intra-process exclusion comes from
    the store's own ``RLock`` — callers always acquire that first — and
    a depth counter makes re-entry by the owning process a no-op.

    Degrades to a no-op for memory-only stores, on platforms without
    ``fcntl``, and on filesystems that refuse advisory locks (NFS with
    locking disabled): the store's algorithms only rely on the lock to
    *narrow* scan-vs-unlink races, never for correctness of the data
    files themselves.
    """

    def __init__(self, path: Path | None) -> None:
        self._path = path
        self._fd: int | None = None
        self._depth = 0

    def __enter__(self) -> "_CrossProcessLock":
        self._depth += 1
        if self._depth > 1 or self._path is None or fcntl is None:
            return self
        try:
            fd = os.open(self._path, os.O_RDWR | os.O_CREAT, 0o644)
        except OSError:  # pragma: no cover - unwritable store root
            return self
        try:
            fcntl.lockf(fd, fcntl.LOCK_EX)
        except OSError:  # pragma: no cover - lockless filesystem (NFS)
            # Filesystem refuses advisory locks: best-effort mode.
            os.close(fd)
            return self
        self._fd = fd
        return self

    def __exit__(self, *exc: object) -> None:
        self._depth -= 1
        if self._depth > 0:
            return
        fd, self._fd = self._fd, None
        if fd is not None:
            try:
                fcntl.lockf(fd, fcntl.LOCK_UN)
            finally:
                os.close(fd)


class ResultStore:
    """Fingerprint → :class:`SimulationResult` map with a disk layer.

    Safe for concurrent use by threads in one process and by processes
    sharing the same directory (see the module docstring for the exact
    contract).

    Args:
        path: on-disk root (``None`` for a memory-only store).
        checkpoint_cap_bytes: ceiling on the checkpoint namespace's
            total footprint; exceeding it evicts the oldest snapshots
            first (results are never evicted — only checkpoints, which
            are re-derivable partial work).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        checkpoint_cap_bytes: int = DEFAULT_CHECKPOINT_CAP,
    ) -> None:
        self.path = Path(path).expanduser() if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        #: Per-store reentrant lock guarding the memory layers and every
        #: stat counter.  Reentrant because multi-step operations
        #: (``put_checkpoint`` → cap enforcement) nest critical sections.
        self._lock = threading.RLock()
        #: Advisory cross-process lock for scan-then-mutate sections.
        #: Lock order is always ``self._lock`` before ``self._dir_lock``.
        self._dir_lock = _CrossProcessLock(
            self.path / ".lock" if self.path is not None else None
        )
        self._memory: dict[str, SimulationResult] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.checkpoint_cap_bytes = checkpoint_cap_bytes
        #: (prefix, records, drained_at) → EngineState, insertion-ordered
        #: so the memory layer can evict oldest-first under the cap.
        self._ckpt_memory: dict[tuple[str, int, tuple], "EngineState"] = {}
        self._ckpt_memory_bytes = 0
        #: Cached on-disk checkpoint footprint; None until first scan.
        #: Maintained incrementally so saves stay O(1) in filesystem
        #: calls; re-synced from a real scan whenever eviction runs or
        #: a concurrent writer makes the running total suspect.
        self._ckpt_disk_bytes: int | None = None
        self.checkpoint_hits = 0
        self.checkpoint_misses = 0
        self.checkpoint_puts = 0
        self.checkpoint_evictions = 0

    @classmethod
    def default(cls) -> "ResultStore":
        """The per-user persistent store (``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-pythia``).

        A set-but-empty ``REPRO_CACHE_DIR`` falls back to the home
        cache too: treating ``""`` as a path would silently root the
        store at the current working directory.
        """
        root = os.environ.get(CACHE_DIR_ENV)
        if not root:
            root = Path.home() / ".cache" / "repro-pythia"
        return cls(root)

    @property
    def persistent(self) -> bool:
        return self.path is not None

    def _file(self, key: str) -> Path:
        assert self.path is not None
        return self.path / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimulationResult | None:
        """Look up a result; memory first, then disk."""
        with self._lock:
            result = self._memory.get(key)
            if result is not None:
                self.hits += 1
                return result
        if self.path is not None:
            try:
                payload = json.loads(self._file(key).read_text())
                result = SimulationResult(**payload["result"])
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                # Missing, concurrently-deleted, truncated, or stale
                # entries are all misses, not errors.
                result = None
            if result is not None:
                with self._lock:
                    # First adopter wins so repeated lookups keep
                    # returning one shared object.
                    result = self._memory.setdefault(key, result)
                    self.hits += 1
                return result
        with self._lock:
            self.misses += 1
        return None

    def put(self, key: str, result: SimulationResult, meta: Any = None) -> None:
        """Insert a result, persisting to disk when configured.

        *meta* (e.g. the cell's canonical description) is stored next to
        the result for debuggability; it is never read back.
        """
        with self._lock:
            self._memory[key] = result
            self.puts += 1
        if self.path is None:
            return
        file = self._file(key)
        file.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": key,
            "result": dataclasses.asdict(result),
            "meta": meta,
        }
        _atomic_write_text(file, json.dumps(payload, sort_keys=True))

    def __contains__(self, key: str) -> bool:
        with self._lock:
            if key in self._memory:
                return True
        return self.path is not None and self._file(key).exists()

    def __len__(self) -> int:
        if self.path is None:
            with self._lock:
                return len(self._memory)
        return sum(1 for _ in self.path.glob("*/*.json"))

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime counters: result and checkpoint hits/misses/puts.

        Taken under the store lock, so the returned dict is a mutually
        consistent snapshot even while other threads are mid-operation.
        """
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "checkpoint_hits": self.checkpoint_hits,
                "checkpoint_misses": self.checkpoint_misses,
                "checkpoint_puts": self.checkpoint_puts,
                "checkpoint_evictions": self.checkpoint_evictions,
            }

    def clear(self, memory_only: bool = False) -> None:
        """Drop cached results and checkpoints (disk too unless *memory_only*)."""
        with self._lock:
            self._memory.clear()
            self._ckpt_memory.clear()
            self._ckpt_memory_bytes = 0
            self._ckpt_disk_bytes = None
            if memory_only or self.path is None:
                return
            # Hold both locks across the sweep: a concurrent writer in
            # another process keeps its rename atomic regardless, but
            # the dir lock keeps two concurrent clears (or a clear vs.
            # an eviction scan) from interleaving their tree walks.
            with self._dir_lock:
                for file in self.path.glob("*/*.json"):
                    file.unlink(missing_ok=True)
                # Sweep tmp files orphaned by writers that died mid-put.
                for file in self.path.glob("*/*.tmp.*"):
                    file.unlink(missing_ok=True)
                for file in self._checkpoint_root.glob("*/*/*"):
                    file.unlink(missing_ok=True)

    # ---- checkpoint namespace -------------------------------------------
    #
    # Mid-run EngineState snapshots: partial work keyed by a cell's
    # prefix fingerprint and the records consumed, so growing a cell's
    # trace_length resumes instead of re-simulating.  The layering
    # mirrors the result side (memory dict over atomic per-entry files),
    # but entries are pickled (live simulator state), carry their drain
    # history in the filename, and live under a size cap.

    @property
    def _checkpoint_root(self) -> Path:
        assert self.path is not None
        return self.path / "checkpoints"

    @staticmethod
    def _checkpoint_name(records: int, drained_at: tuple[int, ...]) -> str:
        tag = "".join(f"-w{d}" for d in drained_at)
        return f"{records:012d}{tag}.ckpt"

    @staticmethod
    def _parse_checkpoint_name(name: str) -> tuple[int, tuple[int, ...]] | None:
        stem = name.removesuffix(".ckpt")
        if stem == name:
            return None
        head, *drains = stem.split("-w")
        try:
            return int(head), tuple(int(d) for d in drains)
        except ValueError:
            return None

    def _checkpoint_file(self, prefix: str, records: int, drained_at: tuple) -> Path:
        return (
            self._checkpoint_root
            / prefix[:2]
            / prefix
            / self._checkpoint_name(records, drained_at)
        )

    def checkpoints(self, prefix: str) -> "CheckpointNamespace":
        """The checkpoint namespace bound to one prefix fingerprint."""
        return CheckpointNamespace(self, prefix)

    def checkpoint_entries(self, prefix: str) -> list[tuple[int, tuple[int, ...]]]:
        """Available snapshots for *prefix*: ``(records, drained_at)``.

        A listed entry is advisory, not a guarantee: a concurrent
        writer may evict it between this listing and a later
        :meth:`get_checkpoint`, which then reports a miss — resume
        paths must fall back to the next candidate (the engine's
        ``_try_resume`` does).
        """
        with self._lock:
            found = {
                (records, drained_at)
                for (entry_prefix, records, drained_at) in self._ckpt_memory
                if entry_prefix == prefix
            }
        if self.path is not None:
            directory = self._checkpoint_root / prefix[:2] / prefix
            try:
                names = [file.name for file in directory.iterdir()]
            except OSError:
                # Directory never created, or removed by a concurrent
                # clear()/eviction mid-listing: nothing on disk.
                names = []
            for name in names:
                parsed = self._parse_checkpoint_name(name)
                if parsed is not None:
                    found.add(parsed)
        return sorted(found)

    def has_checkpoint(self, prefix: str, records: int, drained_at: tuple) -> bool:
        with self._lock:
            if (prefix, records, drained_at) in self._ckpt_memory:
                return True
        return (
            self.path is not None
            and self._checkpoint_file(prefix, records, drained_at).exists()
        )

    def get_checkpoint(
        self, prefix: str, records: int, drained_at: tuple
    ) -> "EngineState | None":
        """Load one snapshot; memory first, then disk."""
        from repro.sim.engine import EngineState

        with self._lock:
            state = self._ckpt_memory.get((prefix, records, drained_at))
            if state is not None:
                self.checkpoint_hits += 1
                return state
        if self.path is not None:
            try:
                with self._checkpoint_file(prefix, records, drained_at).open("rb") as f:
                    state = pickle.load(f)
            except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
                # Missing, evicted-between-list-and-load, truncated, or
                # written by an incompatible version — a miss, not an
                # error.
                state = None
            if isinstance(state, EngineState):
                with self._lock:
                    self.checkpoint_hits += 1
                return state
        with self._lock:
            self.checkpoint_misses += 1
        return None

    def put_checkpoint(self, prefix: str, state: "EngineState") -> None:
        """Persist one snapshot, then enforce the namespace size cap."""
        key = (prefix, state.records, state.drained_at)
        with self._lock:
            previous = self._ckpt_memory.pop(key, None)
            if previous is not None:
                self._ckpt_memory_bytes -= previous.size_bytes
            self._ckpt_memory[key] = state
            self._ckpt_memory_bytes += state.size_bytes
            self.checkpoint_puts += 1
        if self.path is not None:
            file = self._checkpoint_file(prefix, state.records, state.drained_at)
            file.parent.mkdir(parents=True, exist_ok=True)
            replaced = _stat_or_none(file)
            _atomic_write_pickle(file, state)
            written = _stat_or_none(file)
            with self._lock:
                if self._ckpt_disk_bytes is not None:
                    if written is None:
                        # The freshly-written file already vanished — a
                        # concurrent evictor beat us to it and the
                        # incremental total is now suspect.  Drop the
                        # cache so the next cap check does a real scan.
                        self._ckpt_disk_bytes = None
                    else:
                        delta = written.st_size - (
                            replaced.st_size if replaced is not None else 0
                        )
                        # Clamp: a concurrent eviction of `replaced`
                        # would otherwise drift the total permanently
                        # negative.
                        self._ckpt_disk_bytes = max(0, self._ckpt_disk_bytes + delta)
        self._enforce_checkpoint_cap()

    def _enforce_checkpoint_cap(self) -> None:
        """Evict oldest snapshots while the namespace exceeds its cap.

        The memory layer evicts by insertion order; the disk layer by
        file mtime, tracked through a cached running total so the
        common no-eviction save never rescans the tree.  Eviction never
        touches the result layer.  The disk half runs under both the
        store lock and the cross-process file lock: scan → decide →
        unlink is a multi-step section two evictors must not interleave.
        """
        cap = self.checkpoint_cap_bytes
        with self._lock:
            while self._ckpt_memory_bytes > cap and self._ckpt_memory:
                key = next(iter(self._ckpt_memory))
                self._ckpt_memory_bytes -= self._ckpt_memory.pop(key).size_bytes
                self.checkpoint_evictions += 1
            if self.path is None:
                return
            if self._ckpt_disk_bytes is not None and self._ckpt_disk_bytes <= cap:
                return
            with self._dir_lock:
                if self._ckpt_disk_bytes is None:
                    self._ckpt_disk_bytes = sum(
                        stat.st_size
                        for file in self._checkpoint_root.glob("*/*/*.ckpt")
                        if (stat := _stat_or_none(file)) is not None
                    )
                if self._ckpt_disk_bytes <= cap:
                    return
                # Over cap: do the real scan (concurrent writers may have
                # drifted the cached total), re-sync, and evict oldest-first.
                files = [
                    (stat.st_mtime_ns, stat.st_size, file)
                    for file in self._checkpoint_root.glob("*/*/*.ckpt")
                    if (stat := _stat_or_none(file)) is not None
                ]
                total = sum(size for _, size, _ in files)
                for _, size, file in sorted(files):
                    if total <= cap:
                        break
                    file.unlink(missing_ok=True)
                    total -= size
                    self.checkpoint_evictions += 1
                self._ckpt_disk_bytes = max(0, total)


def _stat_or_none(file: Path):
    try:
        return file.stat()
    except OSError:  # pragma: no cover - raced with a concurrent eviction
        return None


class CheckpointNamespace:
    """One prefix fingerprint's view of the store's checkpoint layer.

    This is the duck-typed sink/source the
    :class:`repro.sim.engine.SimulationEngine` consumes: ``entries`` /
    ``has`` / ``load`` / ``save``, everything already scoped to the
    prefix, so the engine never learns about fingerprints.
    """

    def __init__(self, store: ResultStore, prefix: str) -> None:
        self.store = store
        self.prefix = prefix

    def entries(self) -> list[tuple[int, tuple[int, ...]]]:
        return self.store.checkpoint_entries(self.prefix)

    def has(self, records: int, drained_at: tuple[int, ...]) -> bool:
        return self.store.has_checkpoint(self.prefix, records, drained_at)

    def load(self, records: int, drained_at: tuple[int, ...]) -> "EngineState | None":
        return self.store.get_checkpoint(self.prefix, records, drained_at)

    def save(self, state: "EngineState") -> None:
        self.store.put_checkpoint(self.prefix, state)
