"""Content-addressed, disk-persistent result store.

Results are keyed by the *complete* fingerprint of the work that
produced them (see :meth:`repro.api.experiment.Cell.fingerprint`), so a
hit is guaranteed to be byte-equivalent to re-simulating.  The store is
two-layered:

* an in-memory dict (so repeated lookups within a session return the
  same object — the behaviour the historical runner's memoization
  provided);
* an optional on-disk layer of one JSON file per result, sharded by
  fingerprint prefix, written atomically so concurrent writers (process
  pools, parallel pytest) never corrupt each other.

Construct with ``path=None`` for a memory-only store (unit tests,
benchmark timing), or :meth:`ResultStore.default` for the shared
per-user cache honouring ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path
from typing import Any

from repro.sim.system import SimulationResult

#: Environment variable overriding the default on-disk cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class ResultStore:
    """Fingerprint → :class:`SimulationResult` map with a disk layer."""

    def __init__(self, path: str | os.PathLike | None = None) -> None:
        self.path = Path(path).expanduser() if path is not None else None
        if self.path is not None:
            self.path.mkdir(parents=True, exist_ok=True)
        self._memory: dict[str, SimulationResult] = {}
        self.hits = 0
        self.misses = 0
        self.puts = 0

    @classmethod
    def default(cls) -> "ResultStore":
        """The per-user persistent store (``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-pythia``)."""
        root = os.environ.get(CACHE_DIR_ENV)
        if root is None:
            root = Path.home() / ".cache" / "repro-pythia"
        return cls(root)

    @property
    def persistent(self) -> bool:
        return self.path is not None

    def _file(self, key: str) -> Path:
        assert self.path is not None
        return self.path / key[:2] / f"{key}.json"

    def get(self, key: str) -> SimulationResult | None:
        """Look up a result; memory first, then disk."""
        result = self._memory.get(key)
        if result is not None:
            self.hits += 1
            return result
        if self.path is not None:
            try:
                payload = json.loads(self._file(key).read_text())
                result = SimulationResult(**payload["result"])
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                # Missing, concurrently-deleted, truncated, or stale
                # entries are all misses, not errors.
                result = None
            if result is not None:
                self._memory[key] = result
                self.hits += 1
                return result
        self.misses += 1
        return None

    def put(self, key: str, result: SimulationResult, meta: Any = None) -> None:
        """Insert a result, persisting to disk when configured.

        *meta* (e.g. the cell's canonical description) is stored next to
        the result for debuggability; it is never read back.
        """
        self._memory[key] = result
        self.puts += 1
        if self.path is None:
            return
        file = self._file(key)
        file.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "fingerprint": key,
            "result": dataclasses.asdict(result),
            "meta": meta,
        }
        tmp = file.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        os.replace(tmp, file)

    def __contains__(self, key: str) -> bool:
        if key in self._memory:
            return True
        return self.path is not None and self._file(key).exists()

    def __len__(self) -> int:
        if self.path is None:
            return len(self._memory)
        return sum(1 for _ in self.path.glob("*/*.json"))

    @property
    def stats(self) -> dict[str, int]:
        """Lifetime counters: hits / misses / puts."""
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def clear(self, memory_only: bool = False) -> None:
        """Drop cached results (disk files too unless *memory_only*)."""
        self._memory.clear()
        if memory_only or self.path is None:
            return
        for file in self.path.glob("*/*.json"):
            file.unlink(missing_ok=True)
        # Sweep tmp files orphaned by writers that died mid-put.
        for file in self.path.glob("*/*.tmp.*"):
            file.unlink(missing_ok=True)
