"""Pluggable executors: how a batch of independent cells gets simulated.

The :class:`Executor` protocol is a single method — ``run_cells`` — so
alternative backends (thread pools for a future C substrate, remote
fleets, batch schedulers) plug in without touching the session logic.
Two backends ship today:

* :class:`SerialExecutor` — in-process loop; zero overhead, fully
  deterministic, the default.
* :class:`ProcessPoolExecutor` — fans independent cells out across
  cores.  Cells are pure declarative data (see
  :class:`repro.api.experiment.Cell`) and trace generation is
  stable-seeded, so worker processes reproduce exactly what the serial
  path computes.
"""

from __future__ import annotations

import os
from concurrent import futures
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.api.experiment import WorkCell
from repro.sim.system import SimulationResult


def execute_cell(cell: WorkCell) -> SimulationResult:
    """Simulate one work unit (single-core cell or multi-core mix).

    Module-level (picklable) so process pools can ship it to workers;
    dispatches to the cell's own :meth:`execute`.
    """
    return cell.execute()


def _init_worker(extra_prefetchers: dict, trace_files: dict | None = None) -> None:
    """Replicate the parent's runtime registry registrations.

    Spawn/forkserver workers import a fresh :mod:`repro.registry` whose
    ``register_prefetcher`` / ``register_trace_file`` tables are empty;
    without this, cells naming a runtime-registered prefetcher or a
    ``file/<alias>`` trace would fail in the worker.  (System specs need
    no replication — cells embed the resolved config.)
    """
    from repro import registry

    registry._EXTRA_PREFETCHERS.update(extra_prefetchers)
    if trace_files:
        registry._TRACE_FILES.update(trace_files)


@runtime_checkable
class Executor(Protocol):
    """Anything that can turn cells into results, in order."""

    def run_cells(self, cells: Sequence[WorkCell]) -> list[SimulationResult]:
        """Simulate every cell, returning results in input order."""
        ...


class SerialExecutor:
    """Run cells one after another in the calling process."""

    name = "serial"

    def run_cells(self, cells: Sequence[WorkCell]) -> list[SimulationResult]:
        return [execute_cell(cell) for cell in cells]


class ProcessPoolExecutor:
    """Fan cells out over a pool of worker processes.

    Args:
        max_workers: pool size (default: ``os.cpu_count()``, capped at
            the number of cells per batch).
        start_method: multiprocessing start method; the platform default
            (``fork`` on Linux) is used when ``None``.
    """

    name = "process-pool"

    def __init__(self, max_workers: int | None = None, start_method: str | None = None):
        self.max_workers = max_workers
        self.start_method = start_method

    def run_cells(self, cells: Sequence[WorkCell]) -> list[SimulationResult]:
        if not cells:
            return []
        workers = min(self.max_workers or os.cpu_count() or 1, len(cells))
        if workers <= 1:
            return SerialExecutor().run_cells(cells)
        mp_context = None
        if self.start_method is not None:
            import multiprocessing

            mp_context = multiprocessing.get_context(self.start_method)
        from repro import registry

        chunksize = max(1, len(cells) // (workers * 4))
        with futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(dict(registry._EXTRA_PREFETCHERS), dict(registry._TRACE_FILES)),
        ) as pool:
            return list(pool.map(execute_cell, cells, chunksize=chunksize))


def default_executor(parallel: bool | int = False) -> Executor:
    """Convenience selector: ``False``/``0``/``1`` → serial, ``True`` →
    pool at cpu count, ``N > 1`` → pool with N workers."""
    if parallel is True:
        return ProcessPoolExecutor()
    if parallel is False or int(parallel) <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(max_workers=int(parallel))
