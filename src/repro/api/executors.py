"""Pluggable executors: how a batch of independent cells gets simulated.

The :class:`Executor` protocol is a single method — ``run_cells`` — so
alternative backends (thread pools for a future C substrate, remote
fleets, batch schedulers) plug in without touching the session logic.
Two backends ship today:

* :class:`SerialExecutor` — in-process loop; zero overhead, fully
  deterministic, the default.
* :class:`ProcessPoolExecutor` — fans independent cells out across
  cores.  Cells are pure declarative data (see
  :class:`repro.api.experiment.Cell`) and trace generation is
  stable-seeded, so worker processes reproduce exactly what the serial
  path computes.

Concurrency contract: ``run_cells`` is safe to call concurrently from
multiple threads on one executor instance — each call builds (and tears
down) its own worker pool and touches no executor state beyond reading
the configuration attributes.  Those attributes (``store_path``,
``checkpoint_every``) are written exactly once, by
:class:`~repro.api.session.Session`'s auto-configuration under the
session lock, before any concurrent ``run_cells`` can observe them.
Worker-side state (:data:`_WORKER_STORE`) is per-process by
construction: each pool worker initializes its own interpreter's copy
in ``_init_worker`` before any task runs, and
:class:`~repro.api.store.ResultStore` is itself safe for the many
workers sharing one directory.
"""

from __future__ import annotations

import os
from concurrent import futures
from typing import Iterable, Protocol, Sequence, runtime_checkable

from repro.api.experiment import Cell, WorkCell
from repro.sim.system import SimulationResult

#: Worker-global checkpoint plumbing, set up by :func:`_init_worker` when
#: the parent ships a persistent store path.  ``None``/``0`` in the
#: parent process and in pools without checkpointing, so
#: :func:`execute_cell` behaves exactly as before there.
_WORKER_STORE = None
_WORKER_CHECKPOINT_EVERY = 0


def _cell_checkpointable(cell: WorkCell) -> bool:
    """Mirror of ``Session._checkpointable``'s cell-shape half: only
    single-core cells have a resumable prefix, and only with telemetry
    off (a resumed run cannot reconstruct skipped windows' rows)."""
    return isinstance(cell, Cell) and cell.telemetry_window == 0


def execute_cell(cell: WorkCell) -> SimulationResult:
    """Simulate one work unit (single-core cell or multi-core mix).

    Module-level (picklable) so process pools can ship it to workers;
    dispatches to the cell's own :meth:`execute`.  In a worker whose
    pool was configured with the persistent store path, checkpointable
    cells open that store and resume from / write into its checkpoint
    namespace, just as the serial in-session path does.
    """
    store = _WORKER_STORE
    if store is not None and _WORKER_CHECKPOINT_EVERY > 0 and _cell_checkpointable(cell):
        # Checkpoint adoption tolerates concurrent eviction: a snapshot
        # listed by the namespace may vanish before load() (another
        # worker's size-cap eviction), and the engine then falls back
        # to the next-longest compatible snapshot or a fresh run.
        return cell.execute(
            checkpoints=store.checkpoints(cell.prefix_fingerprint()),
            checkpoint_every=_WORKER_CHECKPOINT_EVERY,
        )
    return cell.execute()


def _init_worker(
    extra_prefetchers: dict,
    trace_files: dict | None = None,
    store_path: str | None = None,
    checkpoint_every: int = 0,
) -> None:
    """Replicate the parent's runtime registry registrations.

    Spawn/forkserver workers import a fresh :mod:`repro.registry` whose
    ``register_prefetcher`` / ``register_trace_file`` tables are empty;
    without this, cells naming a runtime-registered prefetcher or a
    ``file/<alias>`` trace would fail in the worker.  (System specs need
    no replication — cells embed the resolved config.)

    When *store_path* is given, the worker also opens the parent's
    persistent :class:`~repro.api.store.ResultStore` so checkpointable
    cells resume mid-trace instead of replaying from record zero —
    checkpoint files are content-addressed and written atomically, so
    concurrent workers sharing the directory are safe.
    """
    from repro import registry

    # Safe: each spawned worker mutates only its *own* fresh interpreter's
    # registry tables — that replication is this initializer's entire job.
    registry._EXTRA_PREFETCHERS.update(extra_prefetchers)  # repro: ignore[concurrency]
    if trace_files:
        registry._TRACE_FILES.update(trace_files)  # repro: ignore[concurrency]
    if store_path is not None:
        from repro.api.store import ResultStore

        global _WORKER_STORE, _WORKER_CHECKPOINT_EVERY
        # Safe: worker-local by design — one store handle per worker
        # process, set once at pool start before any task runs.
        _WORKER_STORE = ResultStore(path=store_path)  # repro: ignore[concurrency]
        _WORKER_CHECKPOINT_EVERY = checkpoint_every  # repro: ignore[concurrency]


@runtime_checkable
class Executor(Protocol):
    """Anything that can turn cells into results, in order."""

    def run_cells(self, cells: Sequence[WorkCell]) -> list[SimulationResult]:
        """Simulate every cell, returning results in input order."""
        ...


class SerialExecutor:
    """Run cells one after another in the calling process."""

    name = "serial"

    def run_cells(self, cells: Sequence[WorkCell]) -> list[SimulationResult]:
        return [execute_cell(cell) for cell in cells]


class ProcessPoolExecutor:
    """Fan cells out over a pool of worker processes.

    Args:
        max_workers: pool size (default: ``os.cpu_count()``, capped at
            the number of cells per batch).
        start_method: multiprocessing start method; the platform default
            (``fork`` on Linux) is used when ``None``.
        store_path: path of a persistent
            :class:`~repro.api.store.ResultStore` for workers to open;
            with *checkpoint_every* > 0, checkpointable cells resume
            from and snapshot into its checkpoint namespace.
            :class:`~repro.api.session.Session` fills these in from its
            own store when checkpointing is on, so they rarely need to
            be set by hand.
        checkpoint_every: checkpoint cadence in records (0 = off).
    """

    name = "process-pool"

    def __init__(
        self,
        max_workers: int | None = None,
        start_method: str | None = None,
        store_path: str | os.PathLike | None = None,
        checkpoint_every: int = 0,
    ):
        self.max_workers = max_workers
        self.start_method = start_method
        self.store_path = store_path
        self.checkpoint_every = checkpoint_every

    @property
    def resumes_checkpoints(self) -> bool:
        """Whether this pool's workers adopt/extend store checkpoints."""
        return self.store_path is not None and self.checkpoint_every > 0

    def _run_serial(self, cells: Sequence[WorkCell]) -> list[SimulationResult]:
        """Degenerate-pool fallback that keeps checkpoint semantics."""
        if not self.resumes_checkpoints:
            return SerialExecutor().run_cells(cells)
        from repro.api.store import ResultStore

        store = ResultStore(path=self.store_path)
        results = []
        for cell in cells:
            if _cell_checkpointable(cell):
                results.append(
                    cell.execute(
                        checkpoints=store.checkpoints(cell.prefix_fingerprint()),
                        checkpoint_every=self.checkpoint_every,
                    )
                )
            else:
                results.append(cell.execute())
        return results

    def run_cells(self, cells: Sequence[WorkCell]) -> list[SimulationResult]:
        if not cells:
            return []
        workers = min(self.max_workers or os.cpu_count() or 1, len(cells))
        if workers <= 1:
            return self._run_serial(cells)
        mp_context = None
        if self.start_method is not None:
            import multiprocessing

            mp_context = multiprocessing.get_context(self.start_method)
        from repro import registry

        chunksize = max(1, len(cells) // (workers * 4))
        store_path = (
            os.fspath(self.store_path) if self.store_path is not None else None
        )
        with futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=mp_context,
            initializer=_init_worker,
            initargs=(
                dict(registry._EXTRA_PREFETCHERS),
                dict(registry._TRACE_FILES),
                store_path,
                self.checkpoint_every,
            ),
        ) as pool:
            return list(pool.map(execute_cell, cells, chunksize=chunksize))


def default_executor(parallel: bool | int = False) -> Executor:
    """Convenience selector: ``False``/``0``/``1`` → serial, ``True`` →
    pool at cpu count, ``N > 1`` → pool with N workers."""
    if parallel is True:
        return ProcessPoolExecutor()
    if parallel is False or int(parallel) <= 1:
        return SerialExecutor()
    return ProcessPoolExecutor(max_workers=int(parallel))
