"""Unified front door: declarative experiments, executors, result store.

This package is the one entry point for running anything in the system::

    from repro.api import Session

    session = Session()                      # persistent result store
    experiment = (session.experiment("demo")
                  .with_traces("spec06/gemsfdtd-1", "ligra/cc-1")
                  .with_prefetchers("spp", "bingo", "pythia"))
    results = session.run(experiment)        # cached cells are free
    print(results.rollup("prefetcher"))      # geomean speedups

Pieces (all replaceable independently):

* :class:`Experiment` — immutable declarative sweep builder
  (traces × prefetchers × systems, composable from string names).
* :class:`Session` — the facade owning a store + executor.
* :class:`SerialExecutor` / :class:`ProcessPoolExecutor` — pluggable
  execution backends for independent cells.
* :class:`ResultStore` — content-addressed, disk-persistent cache keyed
  by complete simulation fingerprints.
* :class:`ResultSet` / :class:`CellResult` / :class:`MixCellResult` —
  typed results with group / pivot / rollup queries (mixes carry
  per-core records).
* :class:`GridSearch` / :class:`SearchResult` — declarative parameter
  searches (the paper's two-phase grid searches) riding the same
  executor/store path; see :mod:`repro.api.search`.

Multi-core mixes are first-class: :meth:`Experiment.with_mixes` expands
them into :class:`MixCell` work units batched through the executors.
Seed replication is too: :meth:`Experiment.with_seeds` fans every cell
across trace seeds as :class:`ReplicatedCell` work units, and
:class:`ResultSet` rollups report mean/std/CI across the replicates.
External trace recordings join the same machinery through the
registry's ``file/`` namespace (:mod:`repro.workloads.ingest`).

Long cells are resumable and observable: ``Session(checkpoint_every=N)``
snapshots mid-run engine state into the store's checkpoint namespace so
extending a cell's ``trace_length`` resumes from the longest compatible
prefix, and :meth:`Experiment.with_telemetry` attaches per-window
:class:`~repro.sim.engine.Timeline` rows (queryable via
:meth:`CellResult.timeline` / :meth:`CellResult.phases` and
:meth:`ResultSet.timeline_rows`).
"""

from repro.api.executors import (
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    default_executor,
    execute_cell,
)
from repro.api.experiment import (
    Cell,
    Experiment,
    MixCell,
    PrefetcherSpec,
    ReplicatedCell,
    SystemSpec,
    WorkCell,
)
from repro.api.fingerprint import canonical, fingerprint
from repro.api.resultset import CellResult, MixCellResult, ResultSet
from repro.api.search import GridSearch, ParamSpace, SearchEntry, SearchResult
from repro.api.session import Session
from repro.api.store import CheckpointNamespace, ResultStore
from repro.sim.engine import EngineState, Phase, Timeline

__all__ = [
    "Cell",
    "CellResult",
    "CheckpointNamespace",
    "EngineState",
    "Executor",
    "Experiment",
    "GridSearch",
    "MixCell",
    "MixCellResult",
    "ParamSpace",
    "Phase",
    "Timeline",
    "PrefetcherSpec",
    "ProcessPoolExecutor",
    "ReplicatedCell",
    "ResultSet",
    "ResultStore",
    "SearchEntry",
    "SearchResult",
    "SerialExecutor",
    "Session",
    "SystemSpec",
    "WorkCell",
    "canonical",
    "default_executor",
    "execute_cell",
    "fingerprint",
]
