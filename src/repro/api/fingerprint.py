"""Content-addressed fingerprints for simulation work units.

A fingerprint is a SHA-256 digest over a *canonical* JSON rendering of
everything that determines a simulation's outcome: the trace spec, the
prefetcher spec (name plus every override), the complete system config
(all nested dataclasses), the trace length and the warmup fraction.
Two cells collide on a fingerprint iff re-simulating them would produce
byte-identical results, which is what lets :class:`repro.api.ResultStore`
be shared across processes, sessions and machines.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
from typing import Any

#: Salt folded into every fingerprint.  Bump this whenever simulator
#: *semantics* change in a way the fingerprinted inputs cannot see (a
#: timing-model bug fix, a cache-policy change).  Two formerly manual
#: cases now self-invalidate: retuned prefetcher presets/defaults (the
#: *resolved* prefetcher config is fingerprinted) and workload-generator
#: tweaks (each trace's content stamp is fingerprinted) — see
#: :meth:`repro.api.experiment.Cell.fingerprint`.  The package version
#: is folded in as well, so releases self-invalidate even when this
#: constant is forgotten.  Bumped to 2 when ``EngineState``/``CounterMark``
#: went slotted: their checkpoint pickle layout changed, and the bump
#: orphans pre-slots snapshots instead of letting them fail to unpickle.
SCHEMA_VERSION = 2


def _schema_salt() -> str:
    from repro import __version__

    return f"{__version__}/{SCHEMA_VERSION}"


def canonical(obj: Any) -> Any:
    """Reduce *obj* to a deterministic JSON-serializable structure.

    Dataclasses are tagged with their class name so two config types with
    coincidentally equal fields do not collide; enums render as
    ``ClassName.MEMBER``; mappings are key-sorted; anything else falls
    back to ``repr``.

    Dataclass fields declared with ``metadata={"semantic": False}`` are
    *excluded*: they flag knobs that cannot affect simulation results
    (e.g. :attr:`PythiaConfig.qvstore_impl`, whose implementations are
    pinned bit-identical by tests), so equivalent work keeps one cache
    entry regardless of how it is executed.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonical(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
            if f.metadata.get("semantic", True)
        }
        return {"__class__": type(obj).__name__, **fields}
    if isinstance(obj, enum.Enum):
        return f"{type(obj).__name__}.{obj.name}"
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    return repr(obj)


def fingerprint(obj: Any) -> str:
    """SHA-256 hex digest of the canonical form of *obj* (schema-salted)."""
    payload = json.dumps(
        {"schema": _schema_salt(), "value": canonical(obj)},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
