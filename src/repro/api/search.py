"""Declarative parameter searches: grid sweeps as first-class experiments.

The paper's §4.3.3 two-phase hyperparameter/reward grid search (Fig 20)
— and every other tuning loop in :mod:`repro.tuning` — is a *sweep over
configuration points*: expand a grid, score each point by the geomean
speedup of one prefetcher configuration over a trace list, keep the
best.  This module makes that shape declarative so it rides the same
``Experiment → Executor → ResultStore`` machinery as every other sweep::

    result = (session.search("fig20")
              .over(alpha=EXPONENTIAL_GRID, gamma=(0.3, 0.556, 0.8),
                    epsilon=(0.002, 0.005, 0.02))
              .with_prefetcher("pythia")
              .phase1(test_traces)
              .phase2(full_traces, top_k=5)
              .run())
    best = result.best        # SearchEntry: point, spec, score
    print(result.table())

Pieces:

* :class:`ParamSpace` — named axes × value grids, expanded to points.
* :class:`GridSearch` — immutable builder binding a space to a scoring
  prefetcher, trace phases, and a session; :meth:`GridSearch.run` turns
  every point into prefetcher cells of **one** experiment per phase, so
  independent points fan out through the session's executor and land in
  the persistent store.
* :class:`SearchResult` / :class:`SearchEntry` — the typed leaderboard.

Phase 2 re-ranks the phase-1 finalists on a larger trace list.  When the
two lists are identical the finalists' phase-1 scores are reused
outright — zero extra simulations, not even store hits.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence

from repro.api.experiment import PrefetcherSpec, SystemSpec
from repro.api.resultset import ResultSet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.api.session import Session


@dataclass(frozen=True)
class ParamSpace:
    """Named parameter axes, each a tuple of candidate values.

    Axes are kept as ``(name, values)`` pairs (insertion-ordered, like
    the keyword arguments that built them) so the space is hashable and
    its cross product is deterministic.
    """

    axes: tuple[tuple[str, tuple[Any, ...]], ...] = ()

    @staticmethod
    def of(**axes: Sequence[Any]) -> "ParamSpace":
        """Build a space from keyword axes: ``ParamSpace.of(alpha=(...))``."""
        frozen = {name: tuple(values) for name, values in axes.items()}
        for name, values in frozen.items():
            if not values:
                raise ValueError(f"parameter axis {name!r} has no values")
        return ParamSpace(tuple(frozen.items()))

    def points(self) -> list[dict[str, Any]]:
        """The cross product, one dict per configuration point."""
        if not self.axes:
            return []
        names = [name for name, _ in self.axes]
        return [
            dict(zip(names, values))
            for values in itertools.product(*(vals for _, vals in self.axes))
        ]

    def __len__(self) -> int:
        n = 1 if self.axes else 0
        for _, values in self.axes:
            n *= len(values)
        return n


@dataclass(frozen=True)
class SearchEntry:
    """One evaluated configuration point of a search leaderboard."""

    #: Grid coordinates, axis name → value.
    point: dict[str, Any]
    #: Factory overrides the point resolved to (identity unless mapped).
    overrides: dict[str, Any]
    #: The exact prefetcher spec the point ran as.
    spec: PrefetcherSpec
    #: Score on the ranking phase (phase 2 for finalists, else phase 1).
    score: float
    #: Phase-1 score (always present).
    phase1_score: float
    #: Phase-2 score, when the entry survived into phase 2.
    phase2_score: float | None = None


@dataclass(frozen=True)
class SearchResult:
    """Typed leaderboard returned by :meth:`GridSearch.run`.

    Attributes:
        name: the search's name.
        entries: the final ranking, best first — the re-ranked phase-2
            finalists when a second phase ran, else all phase-1 points.
        phase1_entries: every point ranked by phase-1 score.
        metric / agg: what the scores are (e.g. geomean speedup).
        stats: per-phase execution statistics
            (``{"phase1": {"cells": ..., "simulated": ..., "cached": ...}}``);
            a skipped phase 2 reports all-zero stats.
        phase1_results / phase2_results: the underlying result sets, for
            secondary metrics (coverage, overprediction, ...).
    """

    name: str
    entries: tuple[SearchEntry, ...]
    phase1_entries: tuple[SearchEntry, ...]
    metric: str
    agg: str
    stats: dict[str, dict[str, int]]
    phase1_results: ResultSet
    phase2_results: ResultSet | None = None

    @property
    def best(self) -> SearchEntry:
        """The winning configuration point."""
        return self.entries[0]

    def __iter__(self) -> Iterator[SearchEntry]:
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    def table(self, fmt: str = "{:.3f}") -> str:
        """Plain-text leaderboard (point coordinates + score columns)."""
        from repro.harness.rollup import format_table

        axes = list(self.entries[0].point) if self.entries else []
        header = ["#", *axes, f"{self.agg} {self.metric}"]
        body = [
            [
                str(rank),
                *[repr(entry.point[axis]) for axis in axes],
                fmt.format(entry.score),
            ]
            for rank, entry in enumerate(self.entries, start=1)
        ]
        return format_table(header, body)


def _identity_points(point: dict[str, Any]) -> dict[str, Any]:
    return dict(point)


@dataclass(frozen=True)
class GridSearch:
    """Immutable declarative search builder bound to a session.

    Build one with :meth:`repro.api.Session.search`; every builder
    method returns a new instance, so searches compose like experiments.
    The search scores each :class:`ParamSpace` point by running
    *prefetcher* with the point's overrides across the phase's traces
    and aggregating a :class:`~repro.api.resultset.ResultSet` metric
    (geomean speedup by default).
    """

    name: str
    session: "Session" = field(repr=False)
    space: ParamSpace = ParamSpace()
    prefetcher: str = "pythia"
    base_overrides: tuple[tuple[str, Any], ...] = ()
    point_mapper: Callable[[dict[str, Any]], dict[str, Any]] = _identity_points
    phase1_traces: tuple[str, ...] = ()
    phase2_traces: tuple[str, ...] | None = None
    top_k: int = 5
    system: SystemSpec | None = None
    trace_length: int | None = None
    metric: str = "speedup"
    agg: str = "geomean"

    # ---- builder methods (each returns a new GridSearch) ----------------

    def over(self, **axes: Sequence[Any]) -> "GridSearch":
        """Set the parameter space from keyword axes."""
        return replace(self, space=ParamSpace.of(**axes))

    def with_prefetcher(self, name: str, **base_overrides: Any) -> "GridSearch":
        """Set the registry prefetcher the points configure.

        *base_overrides* apply to every point; point overrides win on
        conflict.
        """
        return replace(
            self,
            prefetcher=name,
            base_overrides=tuple(sorted(base_overrides.items())),
        )

    def map_points(
        self, mapper: Callable[[dict[str, Any]], dict[str, Any]]
    ) -> "GridSearch":
        """Transform grid points into factory overrides.

        For searches whose axes are not direct factory keywords — e.g.
        the §4.3.3 reward search, where three grid axes fold into one
        :class:`~repro.core.rewards.RewardConfig` override.
        """
        return replace(self, point_mapper=mapper)

    def phase1(self, traces: Sequence[str]) -> "GridSearch":
        """Set the phase-1 (full grid) trace list."""
        return replace(self, phase1_traces=tuple(traces))

    def phase2(self, traces: Sequence[str], top_k: int = 5) -> "GridSearch":
        """Re-rank the phase-1 top-*top_k* on a second trace list."""
        return replace(self, phase2_traces=tuple(traces), top_k=top_k)

    def with_system(self, spec) -> "GridSearch":
        """Score on a specific system (default: the 1c baseline)."""
        return replace(self, system=SystemSpec.of(spec))

    def with_length(self, trace_length: int) -> "GridSearch":
        """Override the session's trace length for this search."""
        return replace(self, trace_length=trace_length)

    def scored_by(self, metric: str, agg: str = "geomean") -> "GridSearch":
        """Change the ranking metric/aggregation (default geomean speedup)."""
        return replace(self, metric=metric, agg=agg)

    # ---- execution -------------------------------------------------------

    def _specs(self) -> list[tuple[dict[str, Any], dict[str, Any], PrefetcherSpec]]:
        """(point, overrides, labelled spec) for every grid point."""
        out = []
        for index, point in enumerate(self.space.points()):
            overrides = dict(self.base_overrides)
            overrides.update(self.point_mapper(point))
            spec = PrefetcherSpec(
                self.prefetcher,
                overrides=tuple(sorted(overrides.items())),
                label=f"{self.name}#{index}",
            )
            out.append((point, overrides, spec))
        return out

    def _experiment(self, phase: str, traces, specs):
        experiment = (
            self.session.experiment(f"{self.name}/{phase}")
            .with_traces(*traces)
            .with_prefetchers(*specs)
        )
        if self.system is not None:
            experiment = experiment.with_systems(self.system)
        if self.trace_length is not None:
            experiment = experiment.with_length(self.trace_length)
        return experiment

    def _score(self, results: ResultSet, specs) -> dict[str, float]:
        by_label = results.rollup("prefetcher", metric=self.metric, agg=self.agg)
        return {spec.label: by_label[spec.label] for _, _, spec in specs}

    def run(self) -> SearchResult:
        """Expand, execute and rank the search on the bound session.

        One experiment per phase: all points batch through the session's
        executor together and land in its result store, so repeating a
        search (or overlapping it with another) re-simulates nothing.
        """
        if not self.phase1_traces:
            raise ValueError(f"search {self.name!r} has no phase-1 traces")
        specs = self._specs()
        if not specs:
            raise ValueError(f"search {self.name!r} has an empty parameter space")

        phase1_results = self.session.run(
            self._experiment("phase1", self.phase1_traces, [s for _, _, s in specs])
        )
        scores = self._score(phase1_results, specs)
        phase1_entries = tuple(
            sorted(
                (
                    SearchEntry(
                        point=point,
                        overrides=overrides,
                        spec=spec,
                        score=scores[spec.label],
                        phase1_score=scores[spec.label],
                    )
                    for point, overrides, spec in specs
                ),
                key=lambda e: -e.score,
            )
        )
        stats = {
            "phase1": dict(phase1_results.stats),
            "phase2": {"cells": 0, "simulated": 0, "cached": 0},
        }

        if self.phase2_traces is None:
            return SearchResult(
                name=self.name,
                entries=phase1_entries,
                phase1_entries=phase1_entries,
                metric=self.metric,
                agg=self.agg,
                stats=stats,
                phase1_results=phase1_results,
            )

        finalists = phase1_entries[: self.top_k]
        if tuple(self.phase2_traces) == tuple(self.phase1_traces):
            # Identical trace lists: phase-2 scores are phase-1 scores.
            # Reuse them outright — zero extra simulations.
            entries = tuple(
                replace(e, phase2_score=e.phase1_score) for e in finalists
            )
            return SearchResult(
                name=self.name,
                entries=entries,
                phase1_entries=phase1_entries,
                metric=self.metric,
                agg=self.agg,
                stats=stats,
                phase1_results=phase1_results,
            )

        finalist_specs = [(e.point, e.overrides, e.spec) for e in finalists]
        phase2_results = self.session.run(
            self._experiment(
                "phase2", self.phase2_traces, [s for _, _, s in finalist_specs]
            )
        )
        rescored = self._score(phase2_results, finalist_specs)
        entries = tuple(
            sorted(
                (
                    replace(
                        e,
                        score=rescored[e.spec.label],
                        phase2_score=rescored[e.spec.label],
                    )
                    for e in finalists
                ),
                key=lambda e: -e.score,
            )
        )
        stats["phase2"] = dict(phase2_results.stats)
        return SearchResult(
            name=self.name,
            entries=entries,
            phase1_entries=phase1_entries,
            metric=self.metric,
            agg=self.agg,
            stats=stats,
            phase1_results=phase1_results,
            phase2_results=phase2_results,
        )
