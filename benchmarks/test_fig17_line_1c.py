"""Fig 17: per-trace performance line graph, single core.

The paper sorts all 150 single-core traces by Pythia's speedup and plots
the line for each prefetcher.  This bench uses the representative sample
(extend via REPRO_BENCH_LENGTH / editing the sample) and prints the
sorted series.
"""

from conftest import all_sample_traces, once
from repro.harness.rollup import format_table, sorted_speedups

PREFETCHERS = ["spp", "bingo", "pythia"]


def test_fig17_line_single_core(session, benchmark):
    traces = all_sample_traces()

    def run():
        return [session.run_one(t, pf) for t in traces for pf in PREFETCHERS]

    records = once(benchmark, run)
    line = sorted_speedups(records, "pythia")
    rows = [(name, f"{s:.3f}") for name, s in line]
    print("\nFig 17: traces sorted by Pythia speedup (1C)")
    print(format_table(["trace", "pythia speedup"], rows))

    # Paper shape: the line is overwhelmingly above 1.0 with a small
    # losing tail (the paper has exactly one losing trace).
    losing = sum(1 for _, s in line if s < 0.97)
    assert losing <= len(line) // 3
