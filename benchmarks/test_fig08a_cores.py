"""Fig 8a: geomean speedup vs core count (1 → multi-core).

The paper sweeps 1-12 cores with DRAM channels scaling 1/2/4; this bench
runs 1- and 2-core points (4-core with REPRO_BENCH_LENGTH raised) and
prints the speedup series per prefetcher.
"""

from conftest import BENCH_LENGTH, once
from repro.harness.rollup import format_table
from repro.sim.config import baseline_multi_core
from repro.sim.metrics import geomean
from repro.workloads import homogeneous_mix

PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]
MIX_WORKLOADS = ["spec06/lbm", "ligra/cc"]
CORE_COUNTS = [1, 2]


def test_fig08a_core_scaling(runner, benchmark):
    def run():
        series: dict[str, list[float]] = {pf: [] for pf in PREFETCHERS}
        for cores in CORE_COUNTS:
            config = baseline_multi_core(cores)
            per_pf: dict[str, list[float]] = {pf: [] for pf in PREFETCHERS}
            for workload in MIX_WORKLOADS:
                traces = homogeneous_mix(workload, cores, length=BENCH_LENGTH)
                for pf in PREFETCHERS:
                    result, baseline = runner.run_mix(traces, pf, config)
                    per_pf[pf].append(result.ipc / baseline.ipc)
            for pf in PREFETCHERS:
                series[pf].append(geomean(per_pf[pf]))
        return series

    series = once(benchmark, run)
    rows = [
        (pf, *[f"{s:.3f}" for s in series[pf]]) for pf in PREFETCHERS
    ]
    print("\nFig 8a: geomean speedup vs core count")
    print(format_table(["prefetcher", *[f"{c}C" for c in CORE_COUNTS]], rows))

    # Paper shape: Pythia's advantage over MLOP grows with core count
    # (shared bandwidth tightens); at minimum it must not collapse.
    gap_1c = series["pythia"][0] - series["mlop"][0]
    gap_nc = series["pythia"][-1] - series["mlop"][-1]
    assert gap_nc >= gap_1c - 0.05
