"""Fig 8a: geomean speedup vs core count (1 → multi-core).

The paper sweeps 1-12 cores with DRAM channels scaling 1/2/4; this bench
runs 1- and 2-core points (4-core with REPRO_BENCH_LENGTH raised) and
prints the speedup series per prefetcher.  The whole sweep is one
declarative experiment: every (mix, core count, prefetcher) point is a
:class:`repro.api.MixCell` batched through the session's executor, each
mix running on the ``<n>c`` baseline matching its core count.
"""

from conftest import once
from repro.harness.rollup import format_table
from repro.workloads import homogeneous_mix_names

PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]
MIX_WORKLOADS = ["spec06/lbm", "ligra/cc"]
CORE_COUNTS = [1, 2]


def test_fig08a_core_scaling(session, benchmark):
    experiment = (
        session.experiment("fig8a")
        .with_mixes(
            *[
                (f"{workload}@{cores}c", homogeneous_mix_names(workload, cores))
                for cores in CORE_COUNTS
                for workload in MIX_WORKLOADS
            ]
        )
        .with_prefetchers(*PREFETCHERS)
    )

    def run():
        results = session.run(experiment)
        return {
            pf: [
                results.filter(prefetcher=pf, system=f"{cores}c").geomean()
                for cores in CORE_COUNTS
            ]
            for pf in PREFETCHERS
        }

    series = once(benchmark, run)
    rows = [
        (pf, *[f"{s:.3f}" for s in series[pf]]) for pf in PREFETCHERS
    ]
    print("\nFig 8a: geomean speedup vs core count")
    print(format_table(["prefetcher", *[f"{c}C" for c in CORE_COUNTS]], rows))

    # Paper shape: Pythia's advantage over MLOP grows with core count
    # (shared bandwidth tightens); at minimum it must not collapse.
    gap_1c = series["pythia"][0] - series["mlop"][0]
    gap_nc = series["pythia"][-1] - series["mlop"][-1]
    assert gap_nc >= gap_1c - 0.05
