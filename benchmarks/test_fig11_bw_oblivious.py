"""Fig 11: bandwidth-oblivious Pythia vs basic Pythia across MTPS.

§6.3.3's ablation: collapsing the high/low-bandwidth reward variants
costs performance when bandwidth is scarce and nothing when plentiful.
"""

from conftest import once
from repro.harness.rollup import format_table
from repro.sim.config import baseline_single_core
from repro.sim.metrics import geomean

TRACES = ["ligra/cc-1", "ligra/pagerankdelta-1", "cloudsuite/cassandra-1"]
MTPS_POINTS = [300, 600, 2400, 9600]


def test_fig11_bw_oblivious(session, benchmark):
    def run():
        rows = []
        for mtps in MTPS_POINTS:
            config = baseline_single_core().with_mtps(mtps)
            basic = geomean(
                [session.run_one(t, "pythia", system=config).speedup for t in TRACES]
            )
            oblivious = geomean(
                [
                    session.run_one(t, "pythia_bw_oblivious", system=config).speedup
                    for t in TRACES
                ]
            )
            rows.append((mtps, basic, oblivious, 100 * (oblivious / basic - 1)))
        return rows

    rows = once(benchmark, run)
    print("\nFig 11: BW-oblivious Pythia normalized to basic Pythia")
    print(
        format_table(
            ["MTPS", "basic", "bw-oblivious", "delta %"],
            [(m, f"{b:.3f}", f"{o:.3f}", f"{d:+.1f}%") for m, b, o, d in rows],
        )
    )

    # Paper shape: the oblivious variant loses at the constrained end
    # and roughly matches at the unconstrained end.
    low_delta = rows[0][3]
    high_delta = rows[-1][3]
    assert low_delta <= high_delta + 2.0
