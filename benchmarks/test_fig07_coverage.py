"""Fig 7: single-core coverage and overprediction per workload suite."""

from conftest import COMPETITORS, all_sample_traces, once
from repro.harness.rollup import coverage_rollup, format_table


def test_fig07_coverage_overprediction(session, benchmark):
    def run():
        return session.run(
            session.experiment("fig7")
            .with_traces(*all_sample_traces())
            .with_prefetchers(*COMPETITORS)
        )

    results = once(benchmark, run)
    rollup = coverage_rollup(results)
    rows = []
    for suite, by_pf in rollup.items():
        for pf in COMPETITORS:
            cov, over = by_pf[pf]
            rows.append((suite, pf, f"{100 * cov:.1f}%", f"{100 * over:.1f}%"))
    print("\nFig 7: coverage / overprediction per suite (1C)")
    print(format_table(["suite", "prefetcher", "coverage", "overprediction"], rows))

    # Paper shape: averaged across suites, Pythia overpredicts less than
    # MLOP (the paper's 83.8% reduction claim, directionally).
    def avg_over(pf):
        return sum(rollup[s][pf][1] for s in rollup) / len(rollup)

    assert avg_over("pythia") < avg_over("mlop")
