"""Sweep smoke tier (``make sweep-smoke``): declarative sweeps end-to-end.

Sub-minute sanity for the two sweep kinds the paper's headline results
are built from — a tiny two-phase grid search and a 2-core mix sweep —
each run through :meth:`repro.api.Session.run` under **both** executors
against a disk-persistent store, asserting the second pass is served
entirely from the store (``cached == cells``, zero re-simulation).

Part of the ``quick`` marker tier CI runs on every push.
"""

from __future__ import annotations

import pytest

from conftest import QUICK_LENGTH
from repro.api import ProcessPoolExecutor, ResultStore, SerialExecutor, Session

pytestmark = pytest.mark.quick

TRACES = ("spec06/lbm-1", "spec06/gemsfdtd-1")
MIX = ("mix-smoke", ("spec06/lbm-1", "spec06/mcf-1"))

EXECUTORS = {
    "serial": SerialExecutor,
    "process-pool": lambda: ProcessPoolExecutor(max_workers=2),
}


@pytest.fixture(params=sorted(EXECUTORS))
def sweep_session(request, tmp_path):
    return Session(
        store=ResultStore(tmp_path / "store"),
        executor=EXECUTORS[request.param](),
        trace_length=QUICK_LENGTH,
    )


def _fresh_clone(session: Session) -> Session:
    """Same disk store, empty memory layer — a brand-new process's view."""
    return Session(
        store=ResultStore(session.store.path),
        executor=session.executor,
        trace_length=session.trace_length,
    )


def test_mix_sweep_smoke(sweep_session):
    experiment = (
        sweep_session.experiment("sweep-smoke-mix")
        .with_mixes(MIX)
        .with_prefetchers("stride", "spp")
    )
    first = sweep_session.run(experiment)
    assert len(first) == 2
    assert all(record.suite == "MIX" for record in first)
    assert len(first.per_core_rows()) == 2 * len(MIX[1])

    again = _fresh_clone(sweep_session).run(experiment)
    assert again.stats["simulated"] == 0
    assert again.stats["cached"] == again.stats["cells"]


def test_grid_search_smoke(sweep_session):
    def search(session: Session):
        return (
            session.search("sweep-smoke-grid")
            .over(alpha=(0.01, 0.05), epsilon=(0.005,))
            .with_prefetcher("pythia")
            .phase1(TRACES)
            .phase2(TRACES, top_k=2)
            .run()
        )

    first = search(sweep_session)
    assert len(first) == 2
    assert first.best.score == max(e.score for e in first.phase1_entries)
    # Identical phase-2 traces: finalists reuse phase-1 scores outright.
    assert first.stats["phase2"]["simulated"] == 0

    again = search(_fresh_clone(sweep_session))
    assert again.stats["phase1"]["simulated"] == 0
    assert again.stats["phase1"]["cached"] == again.stats["phase1"]["cells"]
    assert [e.point for e in again] == [e.point for e in first]
