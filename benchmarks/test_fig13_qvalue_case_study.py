"""Fig 13: Q-value case study on the GemsFDTD-like delta workload.

The paper dumps the Q-value evolution of the PC+Delta feature values
that select offsets +23 and +11 most.  This bench reproduces the
analysis: run Pythia on the delta workload, report the top selected
offsets (the paper finds +23 and +11 account for ~72% of selections),
and print the learned Q-row of the dominant trigger state.
"""

from conftest import once
from repro.core import Pythia
from repro.harness.rollup import format_table
from repro.sim.config import baseline_single_core
from repro.sim.system import simulate


def test_fig13_qvalue_case_study(session, benchmark):
    trace = session.trace("spec06/gemsfdtd-1")

    def run():
        pythia = Pythia()
        simulate(trace, baseline_single_core(), pythia)
        return pythia

    pythia = once(benchmark, run)
    top = pythia.top_actions(4)
    total = sum(pythia.action_counts)
    rows = [
        (f"{offset:+d}", count, f"{100 * count / total:.1f}%")
        for offset, count in top
    ]
    print("\nFig 13: most-selected prefetch offsets on GemsFDTD-like trace")
    print(format_table(["offset", "selections", "share"], rows))

    # Paper shape: the workload's true deltas (+23 and +11) dominate.
    top_offsets = [offset for offset, _ in top]
    assert 23 in top_offsets or 11 in top_offsets
    pattern_share = sum(
        count for offset, count in top if offset in (23, 11)
    ) / total
    print(f"share of +23/+11 selections: {100 * pattern_share:.1f}%")
    assert pattern_share > 0.25
