"""Fig 8c: geomean speedup vs LLC size (1/8x → 2x of 2 MB)."""

from conftest import once
from repro.harness.rollup import format_table

PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]
TRACES = ["spec06/lbm-1", "ligra/cc-1", "parsec/canneal-1"]
LLC_FACTORS = [0.125, 1.0, 2.0]


def test_fig08c_llc_sweep(session, benchmark):
    def run():
        return session.run(
            session.experiment("fig8c")
            .with_traces(*TRACES)
            .with_prefetchers(*PREFETCHERS)
            .sweep_llc(LLC_FACTORS)
        )

    results = once(benchmark, run)
    pivoted = results.pivot("prefetcher", "system")
    series = {
        pf: [pivoted[pf][f"llc_scale={factor}"] for factor in LLC_FACTORS]
        for pf in PREFETCHERS
    }
    labels = [f"{f:g}x" for f in LLC_FACTORS]
    rows = [(pf, *[f"{s:.3f}" for s in series[pf]]) for pf in PREFETCHERS]
    print("\nFig 8c: geomean speedup vs LLC size")
    print(format_table(["prefetcher", *labels], rows))

    # Paper shape: every prefetcher keeps a consistent sign of benefit
    # across LLC sizes (no pathological flip for Pythia).
    assert min(series["pythia"]) > 0.9
