"""Fig 8c: geomean speedup vs LLC size (1/8x → 2x of 2 MB)."""

from conftest import once
from repro.harness.rollup import format_table
from repro.sim.config import baseline_single_core
from repro.sim.metrics import geomean

PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]
TRACES = ["spec06/lbm-1", "ligra/cc-1", "parsec/canneal-1"]
LLC_FACTORS = [0.125, 1.0, 2.0]


def test_fig08c_llc_sweep(runner, benchmark):
    def run():
        series: dict[str, list[float]] = {pf: [] for pf in PREFETCHERS}
        for factor in LLC_FACTORS:
            config = baseline_single_core().scaled_llc(factor)
            for pf in PREFETCHERS:
                speedups = [
                    runner.run(trace, pf, config).speedup for trace in TRACES
                ]
                series[pf].append(geomean(speedups))
        return series

    series = once(benchmark, run)
    labels = [f"{f:g}x" for f in LLC_FACTORS]
    rows = [(pf, *[f"{s:.3f}" for s in series[pf]]) for pf in PREFETCHERS]
    print("\nFig 8c: geomean speedup vs LLC size")
    print(format_table(["prefetcher", *labels], rows))

    # Paper shape: every prefetcher keeps a consistent sign of benefit
    # across LLC sizes (no pathological flip for Pythia).
    assert min(series["pythia"]) > 0.9
