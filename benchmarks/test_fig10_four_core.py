"""Fig 10: four-core performance (homogeneous + heterogeneous mixes)."""

from conftest import BENCH_LENGTH, once
from repro.harness.rollup import format_table
from repro.sim.config import baseline_multi_core
from repro.sim.metrics import geomean
from repro.workloads import heterogeneous_mixes, homogeneous_mix

PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]


def test_fig10_four_core(runner, benchmark):
    config = baseline_multi_core(4)
    length = max(2000, BENCH_LENGTH // 2)  # 4 cores: keep wall time bounded

    def run():
        mixes = [("lbm-homog", homogeneous_mix("spec06/lbm", 4, length=length))]
        mixes += heterogeneous_mixes(num_cores=4, num_mixes=1, length=length)
        series: dict[str, list[float]] = {pf: [] for pf in PREFETCHERS}
        for _, traces in mixes:
            for pf in PREFETCHERS:
                result, baseline = runner.run_mix(traces, pf, config)
                series[pf].append(result.ipc / baseline.ipc)
        return series

    series = once(benchmark, run)
    rows = [(pf, f"{geomean(series[pf]):.3f}") for pf in PREFETCHERS]
    print("\nFig 10: four-core geomean speedup")
    print(format_table(["prefetcher", "speedup"], rows))
    print(
        "note: per-core traces are halved for wall time; Pythia's online"
        " learning is under-converged at this scale — raise"
        " REPRO_BENCH_LENGTH for sharper 4C numbers (see EXPERIMENTS.md)."
    )

    # Sanity at bench scale: no prefetcher collapses the 4C system, and
    # Pythia stays within a convergence margin of the no-prefetch line.
    assert geomean(series["pythia"]) > 0.9
    assert all(geomean(vals) > 0.5 for vals in series.values())
