"""Fig 10: four-core performance (homogeneous + heterogeneous mixes).

One declarative experiment: both mixes cross the prefetcher axis into
:class:`repro.api.MixCell` work units on the 4-core baseline.
"""

from conftest import BENCH_LENGTH, once
from repro.harness.rollup import format_table
from repro.sim.metrics import geomean
from repro.workloads import heterogeneous_mix_names, homogeneous_mix_names

PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]


def test_fig10_four_core(session, benchmark):
    length = max(2000, BENCH_LENGTH // 2)  # 4 cores: keep wall time bounded
    experiment = (
        session.experiment("fig10")
        .with_mixes(
            ("lbm-homog", homogeneous_mix_names("spec06/lbm", 4)),
            *heterogeneous_mix_names(num_cores=4, num_mixes=1),
        )
        .with_prefetchers(*PREFETCHERS)
        .with_length(length)
    )

    def run():
        results = session.run(experiment)
        return {pf: results.filter(prefetcher=pf).values() for pf in PREFETCHERS}

    series = once(benchmark, run)
    rows = [(pf, f"{geomean(series[pf]):.3f}") for pf in PREFETCHERS]
    print("\nFig 10: four-core geomean speedup")
    print(format_table(["prefetcher", "speedup"], rows))
    print(
        "note: per-core traces are halved for wall time; Pythia's online"
        " learning is under-converged at this scale — raise"
        " REPRO_BENCH_LENGTH for sharper 4C numbers (see EXPERIMENTS.md)."
    )

    # Sanity at bench scale: no prefetcher collapses the 4C system, and
    # Pythia stays within a convergence margin of the no-prefetch line.
    assert geomean(series["pythia"]) > 0.9
    assert all(geomean(vals) > 0.5 for vals in series.values())
