"""Fig 19 (appendix B.2): speedup/coverage/overprediction across feature
combinations — the feature-selection search surface."""

from conftest import once
from repro.core.features import ControlFlow, DataFlow, FeatureSpec
from repro.harness.rollup import format_table
from repro.tuning import feature_selection

TRACES = ["spec06/gemsfdtd-1", "spec06/lbm-1", "ligra/cc-1"]
VECTORS = [
    (FeatureSpec(ControlFlow.PC, DataFlow.DELTA),
     FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_DELTAS)),  # Table 2 winner
    (FeatureSpec(ControlFlow.PC, DataFlow.DELTA),),
    (FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_DELTAS),),
    (FeatureSpec(ControlFlow.PC, DataFlow.NONE),),
    (FeatureSpec(ControlFlow.NONE, DataFlow.OFFSET),),
    (FeatureSpec(ControlFlow.PC_PATH, DataFlow.OFFSET),),
]


def test_fig19_feature_sweep(session, benchmark):
    def run():
        return feature_selection(TRACES, session, vectors=VECTORS)

    scores = once(benchmark, run)
    rows = [
        (
            s.label,
            f"{s.geomean_speedup:.3f}",
            f"{100 * s.mean_coverage:.1f}%",
            f"{100 * s.mean_overprediction:.1f}%",
        )
        for s in scores
    ]
    print("\nFig 19: feature-combination sweep (sorted by speedup)")
    print(format_table(["state-vector", "speedup", "coverage", "overpred"], rows))

    # Paper shape: varying the state-vector moves performance, and a
    # delta-based feature family sits at the top on these traces.
    assert scores[0].geomean_speedup > scores[-1].geomean_speedup
    assert "delta" in scores[0].label
