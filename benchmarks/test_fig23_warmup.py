"""Fig 23 (appendix B.6): sensitivity to the number of warmup instructions."""

from conftest import once
from repro.harness.rollup import format_table
from repro.sim.config import baseline_single_core
from repro.sim.metrics import geomean, speedup
from repro.sim.system import simulate
from repro.prefetchers import create

TRACES = ["spec06/lbm-1", "spec06/gemsfdtd-1"]
WARMUPS = [0.0, 0.1, 0.3]
PREFETCHERS = ["spp", "bingo", "pythia"]


def test_fig23_warmup_sensitivity(session, benchmark):
    def run():
        table = {}
        for warmup in WARMUPS:
            for pf in PREFETCHERS:
                speeds = []
                for name in TRACES:
                    trace = session.trace(name)
                    base = simulate(
                        trace, baseline_single_core(), warmup_fraction=warmup
                    )
                    result = simulate(
                        trace,
                        baseline_single_core(),
                        create(pf),
                        warmup_fraction=warmup,
                    )
                    speeds.append(speedup(result, base))
                table[(warmup, pf)] = geomean(speeds)
        return table

    table = once(benchmark, run)
    rows = [
        (f"{int(w * 100)}%", *[f"{table[(w, pf)]:.3f}" for pf in PREFETCHERS])
        for w in WARMUPS
    ]
    print("\nFig 23: geomean speedup vs warmup fraction")
    print(format_table(["warmup", *PREFETCHERS], rows))

    # Paper shape: Pythia keeps its benefit even with zero warmup (it
    # learns online quickly).
    assert table[(0.0, "pythia")] > 1.0
