"""Fig 16: per-workload feature-optimized Pythia on SPEC06 (§6.6.2).

For each workload, try several candidate state-vectors and keep the
best; report the gain of the feature-optimized configuration over the
basic one.  (The paper sweeps all one/two-feature combinations; this
bench samples a small candidate set — raise it for a fuller search.)
"""

from conftest import once
from repro.core.features import (
    BASIC_FEATURES,
    ControlFlow,
    DataFlow,
    FeatureSpec,
)
from repro.harness.rollup import format_table
from repro.sim.metrics import geomean
from repro.tuning import evaluate_feature_vector

TRACES = ["spec06/gemsfdtd-1", "spec06/lbm-1", "spec06/sphinx3-1"]
CANDIDATES = [
    BASIC_FEATURES,
    (FeatureSpec(ControlFlow.PC, DataFlow.DELTA),),
    (FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_DELTAS),),
    (
        FeatureSpec(ControlFlow.PC, DataFlow.OFFSET),
        FeatureSpec(ControlFlow.NONE, DataFlow.LAST4_OFFSETS),
    ),
]


def test_fig16_feature_optimized(session, benchmark):
    def run():
        rows = []
        for trace in TRACES:
            scores = [
                evaluate_feature_vector(features, [trace], session)
                for features in CANDIDATES
            ]
            basic = scores[0]
            best = max(scores, key=lambda s: s.geomean_speedup)
            rows.append((trace, basic.geomean_speedup, best.geomean_speedup, best.label))
        return rows

    rows = once(benchmark, run)
    printable = [
        (t, f"{b:.3f}", f"{o:.3f}", label) for t, b, o, label in rows
    ]
    print("\nFig 16: basic vs feature-optimized Pythia (SPEC06 sample)")
    print(format_table(["workload", "basic", "optimized", "winning features"], printable))

    basic_g = geomean([b for _, b, _, _ in rows])
    optimized_g = geomean([o for _, _, o, _ in rows])
    print(f"geomean: basic {basic_g:.3f}, optimized {optimized_g:.3f}")
    # Optimized is a max over a set containing basic: can only be >=.
    assert optimized_g >= basic_g - 1e-9
