"""Table 4: Pythia's metadata storage overhead (computed exactly)."""

import dataclasses

from conftest import once
from repro.core import PythiaConfig
from repro.harness.rollup import format_table
from repro.hwmodel import storage_overhead


def test_table04_storage(benchmark):
    config = dataclasses.replace(PythiaConfig(), eq_size=256)

    def run():
        return storage_overhead(config)

    breakdown = once(benchmark, run)
    rows = [
        ("QVStore", f"{breakdown.qvstore_bytes / 1024:.1f} KB"),
        ("EQ", f"{breakdown.eq_bytes / 1024:.1f} KB"),
        ("Total", f"{breakdown.total_kib:.1f} KB"),
    ]
    print("\nTable 4: storage overhead of Pythia")
    print(format_table(["structure", "size"], rows))

    # Paper values, exact: 24 KB + 1.5 KB = 25.5 KB.
    assert breakdown.qvstore_bytes == 24 * 1024
    assert breakdown.eq_bytes == 1536
    assert breakdown.total_kib == 25.5
