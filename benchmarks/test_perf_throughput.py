"""Tracked simulator-throughput tier: records/s on fixed cells.

This bench is the repo's performance trajectory: it replays fixed cells
(no-prefetch, SPP, Pythia on a 100k-record ``spec06/lbm-1`` trace, plus
the 200k-record Pythia cell PR 2's acceptance floor is defined on),
reports best-of-N records/s, and — under ``make perfbench``
(``REPRO_WRITE_BENCH=1``) — writes the committed ``BENCH_perf.json`` at
the repo root so perf changes are visible in review diffs.

Since ISSUE 7 every cell is measured on both replay backends: the
batched-epoch engine (the default, ``records_per_s``) and the scalar
per-record loop it must stay bit-identical to
(``scalar_records_per_s``, kept for the trajectory).  ISSUE 10 adds
``native_records_per_s`` — the compiled C kernel — when a C compiler
is present (the rows are ``null`` otherwise, with a visible notice, so
the bench degrades exactly like the engine does).  The native SPP row
is informational only: the kernel does not support SPP, so that cell
pins the per-cell fallback at batched-level throughput.  Schema 3.

The ``SEED_RECORDS_PER_S`` constants are the pre-PR-2 seed throughput
measured un-instrumented on an otherwise-idle machine (commit
``ea58e06``, via ``git worktree`` + ``scripts/profile.py``-style raw
timing); re-measure them the same way if the reference hardware
changes.

Assertions run at two strictness levels: by default only
machine-independent sanity floors are enforced (any hardware that can
run the suite clears them), while ``REPRO_PERF_STRICT=1`` — set by
``make perfbench``, i.e. on the reference runner — also enforces the
calibrated regression floors on the batched rows.  The floors were
re-calibrated in ISSUE 7 on the current (slower) reference runner; they
sit ~15-30% below quiet batched numbers but well above seed-level
throughput, so a slide back toward the pre-optimization loop fails the
gate.  (The scalar rows are informational: the ISSUE 7 qvstore/DRAM/
fill-path work sped the scalar engine up too, so the batched-vs-scalar
gap on these short cells is narrower than batched-vs-seed.)
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import replace
from pathlib import Path

import pytest

from repro import registry
from repro.sim.system import simulate

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_perf.json"

TRACE = "spec06/lbm-1"
LENGTH = 100_000
PYTHIA_200K_LENGTH = 200_000
WARMUP = 0.2
PREFETCHERS = ("none", "spp", "pythia")

#: Seed (pre-PR-2) throughput on the original reference machine,
#: records/s.  Kept verbatim as the trajectory anchor even though the
#: current reference runner is slower — speedup_vs_seed therefore
#: understates the true win on like-for-like hardware.
SEED_RECORDS_PER_S = {
    "none": 31_063,
    "spp": 16_290,
    "pythia": 12_170,
    "pythia_200k": 11_375,
}

#: ISSUE 7 acceptance floor for the 200k-record Pythia cell on the
#: batched backend, records/s (supersedes ISSUE 2's 18,500 which was
#: calibrated on the faster original machine).
PYTHIA_200K_FLOOR = 14_000

#: Reference-runner regression floors for the batched backend
#: (REPRO_PERF_STRICT=1 only): generous against the +-20% noise of the
#: single-CPU runner, but a slide back to scalar-loop throughput (see
#: ``scalar_records_per_s`` in BENCH_perf.json) still fails.
REGRESSION_FLOORS = {"none": 42_000, "spp": 19_000, "pythia": 16_000}

#: Reference-runner regression floors for the native backend
#: (REPRO_PERF_STRICT=1 and a C compiler present).  The quiet numbers
#: sit 3-4x above these — but even at floor level the compiled kernel
#: is well clear of ISSUE 10's >=45k acceptance bar and of any
#: batched-level slide.  No SPP floor: that cell falls back to batched.
NATIVE_REGRESSION_FLOORS = {"none": 150_000, "pythia": 90_000, "pythia_200k": 90_000}

#: ISSUE 10 acceptance ratio: native pythia @ 100k must hold at least
#: this multiple of the batched row on the reference runner.
NATIVE_MIN_SPEEDUP_VS_BATCHED = 2.0

#: Machine-independent sanity floor, records/s: catches a hot loop
#: that has collapsed (e.g. an accidental O(n) re-scan) on any box.
SANITY_FLOOR = 2_000


def _throughput(
    prefetcher: str, length: int, repeats: int = 2, backend: str = "batched"
) -> float:
    """Best-of-*repeats* records/s for one cell (fresh prefetcher each run)."""
    trace = registry.cached_trace(TRACE, length)
    config = replace(registry.system("1c"), replay_backend=backend)
    best = 0.0
    for _ in range(repeats):
        pf = registry.create(prefetcher)
        start = time.perf_counter()
        simulate(trace, config=config, prefetcher=pf, warmup_fraction=WARMUP)
        best = max(best, length / (time.perf_counter() - start))
    return best


def _measure(backend: str, repeats: int) -> dict[str, float]:
    """All four tracked cells on one backend."""
    rates = {
        name: _throughput(name, LENGTH, repeats=repeats, backend=backend)
        for name in PREFETCHERS
    }
    rates["pythia_200k"] = _throughput(
        "pythia", PYTHIA_200K_LENGTH, repeats=repeats, backend=backend
    )
    return rates


@pytest.mark.quick
def test_perf_smoke() -> None:
    """Sub-second sanity: the hot loop sustains real throughput at all."""
    rate = _throughput("pythia", 5_000, repeats=1)
    assert rate > 2_000, f"pythia smoke throughput collapsed: {rate:,.0f} records/s"


def test_perf_throughput() -> None:
    """Measure the tracked cells; write BENCH_perf.json under perfbench."""
    from repro.sim import _native

    rates = _measure("batched", repeats=2)
    # Scalar rows ride along for the trajectory (and as the honest
    # denominator for the batched speedup); one repeat bounds bench time.
    scalar_rates = _measure("scalar", repeats=1)
    native_rates = None
    if _native.available():
        native_rates = _measure("native", repeats=2)
    else:
        print(
            "NOTICE: native replay kernel unavailable (no C compiler?); "
            "native_records_per_s rows omitted and native floors skipped"
        )

    payload = {
        "bench": "perf_throughput",
        "schema": 3,
        "cell": {
            "trace": TRACE,
            "length": LENGTH,
            "pythia_200k_length": PYTHIA_200K_LENGTH,
            "warmup_fraction": WARMUP,
            "system": "1c",
            "backend": "batched",
        },
        "records_per_s": {k: round(v) for k, v in rates.items()},
        "scalar_records_per_s": {k: round(v) for k, v in scalar_rates.items()},
        "native_records_per_s": (
            {k: round(v) for k, v in native_rates.items()}
            if native_rates is not None
            else None
        ),
        "seed_records_per_s": SEED_RECORDS_PER_S,
        "speedup_vs_seed": {
            k: round(rates[k] / SEED_RECORDS_PER_S[k], 2) for k in rates
        },
        "speedup_vs_scalar": {
            k: round(rates[k] / scalar_rates[k], 2) for k in rates
        },
        "native_speedup_vs_batched": (
            {k: round(native_rates[k] / rates[k], 2) for k in native_rates}
            if native_rates is not None
            else None
        ),
        "pythia_200k_floor_records_per_s": PYTHIA_200K_FLOOR,
    }
    if os.environ.get("REPRO_WRITE_BENCH"):
        BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        json.dumps(
            {
                "records_per_s": payload["records_per_s"],
                "scalar_records_per_s": payload["scalar_records_per_s"],
                "native_records_per_s": payload["native_records_per_s"],
            },
            indent=2,
            sort_keys=True,
        )
    )

    for name, rate in rates.items():
        assert rate > SANITY_FLOOR, (
            f"{name} batched throughput collapsed: {rate:,.0f} records/s"
        )
    for name, rate in scalar_rates.items():
        assert rate > SANITY_FLOOR, (
            f"{name} scalar throughput collapsed: {rate:,.0f} records/s"
        )
    assert rates["none"] > rates["pythia"], (
        "the no-prefetch cell must out-run Pythia; the baseline path "
        "has picked up prefetcher-sized overhead"
    )

    if native_rates is not None:
        for name, rate in native_rates.items():
            assert rate > SANITY_FLOOR, (
                f"{name} native throughput collapsed: {rate:,.0f} records/s"
            )

    if os.environ.get("REPRO_PERF_STRICT"):
        for name, floor in REGRESSION_FLOORS.items():
            assert rates[name] > floor, (
                f"{name} batched throughput regressed: {rates[name]:,.0f} "
                f"records/s (floor {floor:,}, seed {SEED_RECORDS_PER_S[name]:,})"
            )
        assert rates["pythia_200k"] > PYTHIA_200K_FLOOR, (
            f"pythia 200k cell regressed: {rates['pythia_200k']:,.0f} records/s "
            f"(floor {PYTHIA_200K_FLOOR:,})"
        )
        if native_rates is not None:
            for name, floor in NATIVE_REGRESSION_FLOORS.items():
                assert native_rates[name] > floor, (
                    f"{name} native throughput regressed: "
                    f"{native_rates[name]:,.0f} records/s (floor {floor:,})"
                )
            ratio = native_rates["pythia"] / rates["pythia"]
            assert ratio >= NATIVE_MIN_SPEEDUP_VS_BATCHED, (
                f"native pythia is only {ratio:.2f}x batched "
                f"(acceptance requires >={NATIVE_MIN_SPEEDUP_VS_BATCHED}x)"
            )
