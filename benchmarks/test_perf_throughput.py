"""Tracked simulator-throughput tier: records/s on fixed cells.

This bench is the repo's performance trajectory: it replays fixed cells
(no-prefetch, SPP, Pythia on a 100k-record ``spec06/lbm-1`` trace, plus
the 200k-record Pythia cell PR 2's acceptance floor is defined on),
reports best-of-N records/s, and — under ``make perfbench``
(``REPRO_WRITE_BENCH=1``) — writes the committed ``BENCH_perf.json`` at
the repo root so perf changes are visible in review diffs.

The ``SEED_RECORDS_PER_S`` constants are the pre-PR-2 seed throughput
measured un-instrumented on an otherwise-idle machine (commit
``ea58e06``, via ``git worktree`` + ``scripts/profile.py``-style raw
timing); re-measure them the same way if the reference hardware
changes.

Assertions run at two strictness levels: by default only
machine-independent sanity floors are enforced (any hardware that can
run the suite clears them), while ``REPRO_PERF_STRICT=1`` — set by
``make perfbench``, i.e. on the reference machine — also enforces the
calibrated regression floors, which sit well below quiet reference
numbers but above seed-level throughput.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro import registry
from repro.sim.system import simulate

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_FILE = REPO_ROOT / "BENCH_perf.json"

TRACE = "spec06/lbm-1"
LENGTH = 100_000
PYTHIA_200K_LENGTH = 200_000
WARMUP = 0.2
PREFETCHERS = ("none", "spp", "pythia")

#: Seed (pre-PR-2) throughput on the reference machine, records/s.
SEED_RECORDS_PER_S = {
    "none": 31_063,
    "spp": 16_290,
    "pythia": 12_170,
    "pythia_200k": 11_375,
}

#: ISSUE 2 acceptance floor for the 200k-record Pythia cell, records/s.
PYTHIA_200K_FLOOR = 18_500

#: Reference-machine regression floors (REPRO_PERF_STRICT=1 only):
#: generous against noise, but a slide back toward seed throughput
#: (see SEED_RECORDS_PER_S) still fails.
REGRESSION_FLOORS = {"none": 40_000, "spp": 20_000, "pythia": 14_000}

#: Machine-independent sanity floor, records/s: catches a hot loop
#: that has collapsed (e.g. an accidental O(n) re-scan) on any box.
SANITY_FLOOR = 2_000


def _throughput(prefetcher: str, length: int, repeats: int = 2) -> float:
    """Best-of-*repeats* records/s for one cell (fresh prefetcher each run)."""
    trace = registry.cached_trace(TRACE, length)
    best = 0.0
    for _ in range(repeats):
        pf = registry.create(prefetcher)
        start = time.perf_counter()
        simulate(trace, prefetcher=pf, warmup_fraction=WARMUP)
        best = max(best, length / (time.perf_counter() - start))
    return best


@pytest.mark.quick
def test_perf_smoke() -> None:
    """Sub-second sanity: the hot loop sustains real throughput at all."""
    rate = _throughput("pythia", 5_000, repeats=1)
    assert rate > 2_000, f"pythia smoke throughput collapsed: {rate:,.0f} records/s"


def test_perf_throughput() -> None:
    """Measure the tracked cells; write BENCH_perf.json under perfbench."""
    rates = {name: _throughput(name, LENGTH) for name in PREFETCHERS}
    rates["pythia_200k"] = _throughput("pythia", PYTHIA_200K_LENGTH)

    payload = {
        "bench": "perf_throughput",
        "schema": 1,
        "cell": {
            "trace": TRACE,
            "length": LENGTH,
            "pythia_200k_length": PYTHIA_200K_LENGTH,
            "warmup_fraction": WARMUP,
            "system": "1c",
        },
        "records_per_s": {k: round(v) for k, v in rates.items()},
        "seed_records_per_s": SEED_RECORDS_PER_S,
        "speedup_vs_seed": {
            k: round(rates[k] / SEED_RECORDS_PER_S[k], 2) for k in rates
        },
        "pythia_200k_floor_records_per_s": PYTHIA_200K_FLOOR,
    }
    if os.environ.get("REPRO_WRITE_BENCH"):
        BENCH_FILE.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(json.dumps(payload["records_per_s"], indent=2, sort_keys=True))

    for name, rate in rates.items():
        assert rate > SANITY_FLOOR, (
            f"{name} throughput collapsed: {rate:,.0f} records/s"
        )
    assert rates["none"] > rates["pythia"], (
        "the no-prefetch cell must out-run Pythia; the baseline path "
        "has picked up prefetcher-sized overhead"
    )

    if os.environ.get("REPRO_PERF_STRICT"):
        for name, floor in REGRESSION_FLOORS.items():
            assert rates[name] > floor, (
                f"{name} throughput regressed: {rates[name]:,.0f} records/s "
                f"(floor {floor:,}, seed {SEED_RECORDS_PER_S[name]:,})"
            )
        assert rates["pythia_200k"] > REGRESSION_FLOORS["pythia"], (
            f"pythia 200k cell regressed: {rates['pythia_200k']:,.0f} records/s"
        )
