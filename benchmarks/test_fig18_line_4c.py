"""Fig 18: per-mix performance line graph, multi-core.

Sorted per-mix speedups of Pythia on heterogeneous mixes (the paper uses
272 four-core mixes; this bench runs a 2-core sample for wall-time).
"""

from conftest import BENCH_LENGTH, once
from repro.harness.rollup import format_table
from repro.sim.config import baseline_multi_core
from repro.workloads import heterogeneous_mixes


def test_fig18_line_multicore(runner, benchmark):
    config = baseline_multi_core(2)
    mixes = heterogeneous_mixes(num_cores=2, num_mixes=4, length=BENCH_LENGTH)

    def run():
        rows = []
        for name, traces in mixes:
            result, baseline = runner.run_mix(traces, "pythia", config)
            rows.append((name, result.ipc / baseline.ipc))
        rows.sort(key=lambda pair: pair[1])
        return rows

    rows = once(benchmark, run)
    print("\nFig 18: mixes sorted by Pythia speedup (2C sample)")
    print(format_table(["mix", "pythia speedup"], [(n, f"{s:.3f}") for n, s in rows]))

    # Paper shape: Pythia does not catastrophically lose on any mix
    # (worst single-mix loss in the paper is -3.5%).
    assert rows[0][1] > 0.85
