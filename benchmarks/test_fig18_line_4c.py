"""Fig 18: per-mix performance line graph, multi-core.

Sorted per-mix speedups of Pythia on heterogeneous mixes (the paper uses
272 four-core mixes; this bench runs a 2-core sample for wall-time).
All mixes batch through the executor as one declarative experiment.
"""

from conftest import once
from repro.harness.rollup import format_table
from repro.workloads import heterogeneous_mix_names


def test_fig18_line_multicore(session, benchmark):
    experiment = (
        session.experiment("fig18")
        .with_mixes(*heterogeneous_mix_names(num_cores=2, num_mixes=4))
        .with_prefetchers("pythia")
    )

    def run():
        results = session.run(experiment)
        rows = [(record.trace_name, record.speedup) for record in results]
        rows.sort(key=lambda pair: pair[1])
        return rows

    rows = once(benchmark, run)
    print("\nFig 18: mixes sorted by Pythia speedup (2C sample)")
    print(format_table(["mix", "pythia speedup"], [(n, f"{s:.3f}") for n, s in rows]))

    # Paper shape: Pythia does not catastrophically lose on any mix
    # (worst single-mix loss in the paper is -3.5%).
    assert rows[0][1] > 0.85
