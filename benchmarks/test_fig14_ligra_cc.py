"""Fig 14: runtime-in-bandwidth-bucket histogram + IPC on Ligra-CC.

Shows per prefetcher how much of the run is spent in each DRAM
utilization quartile, alongside the IPC delta — the mechanism by which
overprediction turns into slowdown on a bandwidth-hungry graph kernel.
"""

from conftest import once
from repro.harness.rollup import format_table

PREFETCHERS = ["none", "spp", "bingo", "mlop", "pythia", "pythia_strict"]


def test_fig14_ligra_cc(session, benchmark):
    def run():
        return {pf: session.run_one("ligra/cc-1", pf) for pf in PREFETCHERS}

    records = once(benchmark, run)
    rows = []
    for pf in PREFETCHERS:
        record = records[pf]
        buckets = record.result.bw_bucket_fractions
        rows.append(
            (
                pf,
                *[f"{100 * b:.0f}%" for b in buckets],
                f"{100 * (record.speedup - 1):+.1f}%",
            )
        )
    print("\nFig 14: bandwidth-usage buckets and performance on Ligra-CC")
    print(
        format_table(
            ["prefetcher", "<25%", "25-50%", "50-75%", ">=75%", "IPC delta"],
            rows,
        )
    )

    # Paper shape: MLOP pushes the system into the upper bandwidth
    # buckets more than Pythia does.
    def high_bw_share(pf):
        return sum(records[pf].result.bw_bucket_fractions[2:])

    assert high_bw_share("pythia") <= high_bw_share("mlop") + 0.05
    # Strict Pythia uses no more bandwidth than basic.
    assert high_bw_share("pythia_strict") <= high_bw_share("pythia") + 0.05
