"""Shared fixtures for the per-figure benchmark harness.

Every ``benchmarks/test_figXX_*.py`` regenerates one table or figure of
the paper: it runs the same sweep (scaled down — see DESIGN.md) and
prints the same rows/series the paper plots.  Benches assert only weak
sanity properties; the printed output is the artifact.

Execution runs on a shared memory-only :class:`repro.api.Session`
(memory-only so pytest-benchmark times simulation, not disk reads);
every bench — single-core sweeps, multi-core mixes, tuning searches —
goes through it, so baselines are shared across the whole suite.

Scale knobs:

* ``REPRO_BENCH_LENGTH`` — accesses per trace (default 9000).  Longer
  traces help Pythia, whose online learning is still converging at the
  default scale.
* ``REPRO_BENCH_WARMUP`` — warmup fraction (default 0.4).
* ``REPRO_BENCH_WORKERS`` — if set to an integer > 1, experiment cells
  fan out over that many worker processes.

The ``quick`` marker (see pytest.ini / Makefile) selects the sub-minute
smoke tier; quick benches use the small-trace ``quick_session`` fixture.
"""

from __future__ import annotations

import os

import pytest

from repro.api import ResultStore, Session, default_executor

#: Accesses per trace for all benches.
BENCH_LENGTH = int(os.environ.get("REPRO_BENCH_LENGTH", "9000"))

#: Warmup fraction for benches: larger than the test default so that
#: Pythia's online convergence (optimistic-initialization exploration)
#: falls mostly outside the measured region, as the paper's 100M-of-600M
#: warmup achieves at full scale.
BENCH_WARMUP = float(os.environ.get("REPRO_BENCH_WARMUP", "0.4"))

#: Worker processes for experiment cells (1 = serial).
BENCH_WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))

#: Accesses per trace for the quick (sub-minute) smoke tier.
QUICK_LENGTH = int(os.environ.get("REPRO_QUICK_LENGTH", "2000"))

#: Small representative trace sample per suite, used where running the
#: full 100+-trace list would be too slow for a bench.
SAMPLE_TRACES: dict[str, list[str]] = {
    "SPEC06": ["spec06/gemsfdtd-1", "spec06/lbm-1", "spec06/sphinx3-1", "spec06/mcf-1"],
    "SPEC17": ["spec17/fotonik3d-1", "spec17/xz-1"],
    "PARSEC": ["parsec/canneal-1", "parsec/streamcluster-1"],
    "LIGRA": ["ligra/cc-1", "ligra/pagerankdelta-1", "ligra/bfs-1"],
    "CLOUDSUITE": ["cloudsuite/cassandra-1", "cloudsuite/nutch-1"],
}

#: The paper's four headline competitors (Fig 7/9/10 order).
COMPETITORS = ("spp", "bingo", "mlop", "pythia")


def all_sample_traces() -> list[str]:
    return [t for traces in SAMPLE_TRACES.values() for t in traces]


@pytest.fixture(scope="session")
def session() -> Session:
    """Session-wide Session: traces and results are computed once."""
    return Session(
        store=ResultStore(),
        executor=default_executor(BENCH_WORKERS),
        trace_length=BENCH_LENGTH,
        warmup_fraction=BENCH_WARMUP,
    )


@pytest.fixture(scope="session")
def quick_session() -> Session:
    """Small-trace session backing the sub-minute ``quick`` smoke tier."""
    return Session(store=ResultStore(), trace_length=QUICK_LENGTH)


def once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
