"""Fig 8b: geomean speedup vs DRAM bandwidth (MTPS sweep).

The paper's headline robustness result: aggressive prefetchers (MLOP,
Bingo) lose their gains as per-core bandwidth shrinks toward server-like
configurations, while Pythia's bandwidth-aware rewards keep it on top.
"""

from conftest import once
from repro.harness.rollup import format_table
from repro.sim.config import baseline_single_core
from repro.sim.metrics import geomean

PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]
TRACES = ["spec06/lbm-1", "ligra/cc-1", "parsec/canneal-1", "cloudsuite/cassandra-1"]
MTPS_POINTS = [300, 1200, 2400, 9600]


def test_fig08b_bandwidth_sweep(session, benchmark):
    def run():
        series: dict[str, dict[int, float]] = {pf: {} for pf in PREFETCHERS}
        for mtps in MTPS_POINTS:
            config = baseline_single_core().with_mtps(mtps)
            for pf in PREFETCHERS:
                speedups = [
                    session.run_one(trace, pf, system=config).speedup for trace in TRACES
                ]
                series[pf][mtps] = geomean(speedups)
        return series

    series = once(benchmark, run)
    rows = [
        (pf, *[f"{series[pf][m]:.3f}" for m in MTPS_POINTS])
        for pf in PREFETCHERS
    ]
    print("\nFig 8b: geomean speedup vs DRAM MTPS")
    print(format_table(["prefetcher", *[str(m) for m in MTPS_POINTS]], rows))

    # Paper shape: at the most constrained point Pythia beats MLOP and
    # Bingo decisively; MLOP's gains collapse at low bandwidth.
    low = MTPS_POINTS[0]
    assert series["pythia"][low] > series["mlop"][low]
    assert series["pythia"][low] > series["bingo"][low]
    assert series["mlop"][low] < series["mlop"][MTPS_POINTS[-1]]
