"""Sub-minute smoke tier: end-to-end sanity over the Session API.

Selected by ``pytest -m quick`` (``make quick``): a miniature version of
the full figure pipeline — declarative experiment, executor, result
store, rollups — on traces small enough that the whole tier finishes in
well under a minute.  This is the tier CI runs on every push; the full
``benchmarks/`` figure suite is the slow artifact pass.
"""

from __future__ import annotations

import pytest

pytestmark = pytest.mark.quick

TRACES = ("spec06/lbm-1", "ligra/cc-1")
PREFETCHERS = ("stride", "spp")


def test_session_end_to_end(quick_session):
    results = quick_session.run(
        quick_session.experiment("smoke")
        .with_traces(*TRACES)
        .with_prefetchers(*PREFETCHERS)
    )
    assert len(results) == len(TRACES) * len(PREFETCHERS)
    assert all(r.speedup > 0 for r in results)
    rollup = results.rollup("suite", "prefetcher")
    assert set(rollup) == {"SPEC06", "LIGRA"}
    assert set(rollup["SPEC06"]) == set(PREFETCHERS)


def test_store_absorbs_repeat_runs(quick_session):
    experiment = (
        quick_session.experiment("smoke-repeat")
        .with_traces(TRACES[0])
        .with_prefetchers(*PREFETCHERS)
    )
    quick_session.run(experiment)
    again = quick_session.run(experiment)
    assert again.stats["simulated"] == 0
    assert again.stats["cached"] == again.stats["cells"]


def test_mix_smoke(quick_session):
    from repro.sim.config import baseline_multi_core

    result, baseline = quick_session.run_mix(
        [TRACES[0], TRACES[0]], "stride", baseline_multi_core(2)
    )
    assert result.instructions > 0
    assert baseline.prefetcher_name == "none"


def test_replicated_smoke(quick_session):
    """Seed replication end-to-end: mean/std/CI across trace seeds."""
    results = quick_session.run(
        quick_session.experiment("smoke-seeds")
        .with_traces(TRACES[0])
        .with_prefetchers("stride")
        .with_seeds(2)
    )
    assert [r.seed for r in results] == [1, 2]
    assert all(r.trace_name == "spec06/lbm" for r in results)
    summary = results.summary("speedup")
    assert summary["n"] == 2 and summary["mean"] > 0
    assert results.rollup("trace_name", agg="std")["spec06/lbm"] >= 0.0
