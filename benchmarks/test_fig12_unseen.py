"""Fig 12: performance on unseen (CVP-2-like) traces, never used to tune."""

from conftest import once
from repro.harness.rollup import format_table, per_suite_geomean
from repro.workloads import cvp_trace_names

PREFETCHERS = ["spp", "bingo", "mlop", "pythia"]


def test_fig12_unseen_traces(session, benchmark):
    traces = cvp_trace_names(per_workload=1)

    def run():
        return [session.run_one(t, pf) for t in traces for pf in PREFETCHERS]

    records = once(benchmark, run)
    rollup = per_suite_geomean(records)
    rows = [
        (suite, *[f"{rollup[suite][pf]:.3f}" for pf in PREFETCHERS])
        for suite in sorted(rollup)
    ]
    print("\nFig 12: geomean speedup on unseen traces (1C)")
    print(format_table(["category", *PREFETCHERS], rows))

    # Paper claim: Pythia, tuned elsewhere, still delivers benefits on
    # traces it never saw (no catastrophic generalization failure).
    from repro.sim.metrics import geomean

    overall = geomean(
        [r.speedup for r in records if r.prefetcher == "pythia"]
    )
    assert overall > 0.97
