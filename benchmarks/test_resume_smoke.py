"""Resume smoke tier: checkpointed extension of a long Pythia cell.

The ISSUE 5 acceptance scenario, end-to-end through the Session API:
run ``pythia @ spec06/lbm-1`` for 100k records with checkpointing on,
then extend the same cell to 200k.  The extension must

* resume from the 100k end-of-run snapshot (the store reports the
  checkpoint hit and the engine-visible resume point),
* produce a table-identical :class:`~repro.api.ResultSet` to a fresh
  200k run in a checkpoint-free session — bit-identical
  ``SimulationResult`` fields, not just matching rollups.

Warmup is pinned in absolute records (the paper's 100M-of-600M
convention) so the warmup split — and therefore the drain history the
checkpoints carry — stays put as the cell grows; that is what makes the
100k prefix exactly reusable.  Part of the ``quick`` tier and wired
into ``scripts/ci.sh``.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.api import ResultStore, Session

pytestmark = pytest.mark.quick

TRACE = "spec06/lbm-1"
PREFETCHER = "pythia"
SHORT = 100_000
LONG = 200_000
WARMUP_RECORDS = 20_000
CHECKPOINT_EVERY = 50_000


def test_resume_100k_to_200k_table_identical(tmp_path):
    session = Session(
        store=ResultStore(tmp_path / "store"),
        checkpoint_every=CHECKPOINT_EVERY,
    )

    short = session.run_one(
        TRACE,
        PREFETCHER,
        trace_length=SHORT,
        warmup_records=WARMUP_RECORDS,
    )
    assert short.result.instructions > 0

    # The short run left snapshots behind — including the end-of-run
    # state the extension resumes from.
    from repro.api.experiment import Cell, PrefetcherSpec, SystemSpec

    prefix = Cell(
        trace=TRACE,
        prefetcher=PrefetcherSpec.of(PREFETCHER),
        system=SystemSpec.of("1c"),
        trace_length=SHORT,
        warmup_fraction=session.warmup_fraction,
        warmup_records=WARMUP_RECORDS,
    ).prefix_fingerprint()
    entries = session.store.checkpoint_entries(prefix)
    assert (SHORT, (WARMUP_RECORDS,)) in entries

    hits_before = session.store.checkpoint_hits
    extended = session.run_one(
        TRACE,
        PREFETCHER,
        trace_length=LONG,
        warmup_records=WARMUP_RECORDS,
    )
    # The store must report the resume: the 100k snapshot was served.
    assert session.store.checkpoint_hits > hits_before

    fresh_session = Session(store=ResultStore(tmp_path / "fresh"))
    fresh = fresh_session.run_one(
        TRACE,
        PREFETCHER,
        trace_length=LONG,
        warmup_records=WARMUP_RECORDS,
    )

    # Bit-identical, field for field — resume introduced no behaviour.
    assert dataclasses.asdict(extended.result) == dataclasses.asdict(fresh.result)
    assert dataclasses.asdict(extended.baseline) == dataclasses.asdict(
        fresh.baseline
    )
    assert extended.speedup == fresh.speedup
    assert extended.coverage == fresh.coverage
