"""Fig 1: motivational comparison of SPP, Bingo, and Pythia.

Reproduces both panels on the six example workloads: (a) coverage and
overprediction as fractions of baseline LLC misses, (b) IPC improvement
over the no-prefetching baseline.
"""

from conftest import once
from repro.harness.rollup import format_table

WORKLOADS = [
    "spec06/sphinx3-1",
    "parsec/canneal-1",
    "parsec/facesim-1",
    "spec06/gemsfdtd-1",
    "ligra/cc-1",
    "ligra/pagerankdelta-1",
]
PREFETCHERS = ["spp", "bingo", "pythia"]


def test_fig01_motivation(session, benchmark):
    def run():
        return session.run(
            session.experiment("fig1")
            .with_traces(*WORKLOADS)
            .with_prefetchers(*PREFETCHERS)
        )

    results = once(benchmark, run)
    rows = [
        (
            r.trace_name,
            r.prefetcher,
            f"{100 * r.coverage:.1f}%",
            f"{100 * r.overprediction:.1f}%",
            f"{100 * (r.speedup - 1):+.1f}%",
        )
        for r in results
    ]
    print("\nFig 1: coverage / overprediction / IPC improvement")
    print(format_table(["workload", "prefetcher", "coverage", "overpred", "IPC"], rows))

    by_key = {(r.trace_name, r.prefetcher): r for r in results}
    # Paper shape (a): Bingo out-covers SPP on the region workloads.
    assert (
        by_key[("parsec/canneal-1", "bingo")].coverage
        >= by_key[("parsec/canneal-1", "spp")].coverage
    )
    # Paper shape (b): Pythia holds up on the bandwidth-hungry Ligra
    # workloads where aggressive prefetching hurts.
    assert by_key[("ligra/cc-1", "pythia")].overprediction <= 0.6
