"""Fig 21 (appendix B.4): Pythia vs the context prefetcher (CP-HW).

The myopic contextual bandit vs the far-sighted SARSA agent: same
action space, same hardware-only features, no Q-value bootstrapping and
no bandwidth awareness on CP's side.
"""

from conftest import SAMPLE_TRACES, once
from repro.harness.rollup import format_table, per_suite_geomean
from repro.sim.metrics import geomean

PREFETCHERS = ["cp_hw", "pythia"]


def test_fig21_pythia_vs_cp_hw(session, benchmark):
    traces = [t for suite in SAMPLE_TRACES.values() for t in suite[:2]]

    def run():
        return [session.run_one(t, pf) for t in traces for pf in PREFETCHERS]

    records = once(benchmark, run)
    rollup = per_suite_geomean(records)
    rows = [
        (suite, *[f"{rollup[suite][pf]:.3f}" for pf in PREFETCHERS])
        for suite in rollup
    ]
    print("\nFig 21: Pythia vs CP-HW per suite (1C)")
    print(format_table(["suite", *PREFETCHERS], rows))

    pythia = geomean([r.speedup for r in records if r.prefetcher == "pythia"])
    cp = geomean([r.speedup for r in records if r.prefetcher == "cp_hw"])
    print(f"overall: pythia {pythia:.3f}, cp_hw {cp:.3f}")
    # Paper shape: Pythia outperforms the myopic bandit overall.
    assert pythia >= cp - 0.01
