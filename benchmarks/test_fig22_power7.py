"""Fig 22 (appendix B.5): Pythia vs the IBM POWER7 adaptive prefetcher.

POWER7 only tunes streaming aggressiveness; it cannot represent
non-streaming patterns no matter how it adapts.
"""

from conftest import SAMPLE_TRACES, once
from repro.harness.rollup import format_table, per_suite_geomean
from repro.sim.metrics import geomean

PREFETCHERS = ["power7", "pythia"]


def test_fig22_pythia_vs_power7(session, benchmark):
    traces = [t for suite in SAMPLE_TRACES.values() for t in suite[:2]]

    def run():
        return [session.run_one(t, pf) for t in traces for pf in PREFETCHERS]

    records = once(benchmark, run)
    rollup = per_suite_geomean(records)
    rows = [
        (suite, *[f"{rollup[suite][pf]:.3f}" for pf in PREFETCHERS])
        for suite in rollup
    ]
    print("\nFig 22: Pythia vs POWER7 adaptive prefetcher per suite (1C)")
    print(format_table(["suite", *PREFETCHERS], rows))

    pythia = geomean([r.speedup for r in records if r.prefetcher == "pythia"])
    power7 = geomean([r.speedup for r in records if r.prefetcher == "power7"])
    print(f"overall: pythia {pythia:.3f}, power7 {power7:.3f}")
    # Paper shape: Pythia captures patterns POWER7's streamer cannot.
    assert pythia >= power7 - 0.02


def test_fig22_delta_pattern_gap(session):
    """On the delta workload POWER7's streaming depths are useless."""
    pythia = session.run_one("spec06/gemsfdtd-1", "pythia")
    power7 = session.run_one("spec06/gemsfdtd-1", "power7")
    assert pythia.coverage > power7.coverage
