"""Fig 8d: multi-level schemes — Stride+Pythia vs Stride+Streamer vs IPCP."""

from conftest import once
from repro.harness.rollup import format_table
from repro.sim.config import baseline_single_core
from repro.sim.metrics import geomean

TRACES = ["spec06/lbm-1", "spec06/leslie3d-1", "parsec/canneal-1"]
MTPS_POINTS = [300, 2400]
#: (label, l2 prefetcher, l1 prefetcher)
SCHEMES = [
    ("stride+streamer", "streamer", "stride"),
    ("ipcp", "ipcp", None),
    ("stride+pythia", "pythia", "stride"),
]


def test_fig08d_multilevel(session, benchmark):
    def run():
        series: dict[str, dict[int, float]] = {label: {} for label, _, _ in SCHEMES}
        for mtps in MTPS_POINTS:
            config = baseline_single_core().with_mtps(mtps)
            for label, l2, l1 in SCHEMES:
                speedups = [
                    session.run_one(trace, l2, system=config, l1_prefetcher=l1).speedup
                    for trace in TRACES
                ]
                series[label][mtps] = geomean(speedups)
        return series

    series = once(benchmark, run)
    rows = [
        (label, *[f"{series[label][m]:.3f}" for m in MTPS_POINTS])
        for label, _, _ in SCHEMES
    ]
    print("\nFig 8d: multi-level prefetching vs DRAM MTPS")
    print(format_table(["scheme", *[str(m) for m in MTPS_POINTS]], rows))

    # Paper shape: Stride+Pythia leads at the constrained point.
    low = MTPS_POINTS[0]
    assert series["stride+pythia"][low] >= series["stride+streamer"][low] - 0.02
