"""Fig 15: basic vs strict Pythia across the Ligra suite (§6.6.1).

Customizing only the reward registers — punishing inaccuracy harder and
removing the no-prefetch penalty — buys extra performance on the
bandwidth-hungry graph workloads without touching the hardware.
"""

from conftest import once
from repro.harness.rollup import format_table
from repro.sim.metrics import geomean

LIGRA_TRACES = [
    "ligra/pagerank-1",
    "ligra/pagerankdelta-1",
    "ligra/cc-1",
    "ligra/bfs-1",
    "ligra/bellmanford-1",
]


def test_fig15_strict_pythia(session, benchmark):
    def run():
        rows = []
        for trace in LIGRA_TRACES:
            basic = session.run_one(trace, "pythia")
            strict = session.run_one(trace, "pythia_strict")
            rows.append((trace, basic.speedup, strict.speedup))
        return rows

    rows = once(benchmark, run)
    printable = [
        (t, f"{b:.3f}", f"{s:.3f}", f"{100 * (s / b - 1):+.1f}%")
        for t, b, s in rows
    ]
    print("\nFig 15: basic vs strict Pythia on Ligra")
    print(format_table(["workload", "basic", "strict", "delta"], printable))
    basic_g = geomean([b for _, b, _ in rows])
    strict_g = geomean([s for _, _, s in rows])
    print(f"geomean: basic {basic_g:.3f}, strict {strict_g:.3f}")

    # Paper shape: strict is at least competitive with basic on Ligra
    # (the paper reports +2% average, up to +7.8%).
    assert strict_g >= basic_g - 0.03
