"""Fig 9: single-core performance per suite, and prefetcher combinations.

Panel (a): geomean speedup per workload suite for SPP/Bingo/MLOP/Pythia,
replicated across trace seeds (``with_seeds``) so the table carries
±std error bars — Pythia's learning is stochastic by construction, and
a single draw per workload cannot distinguish a real win from seed
noise.
Panel (b): Pythia against cumulative combinations Stride, Stride+SPP, …
— the paper's demonstration that multi-feature learning beats bolting
single-feature prefetchers together (combined coverage also combines
overpredictions).
"""

from conftest import COMPETITORS, all_sample_traces, once
from repro.harness.rollup import format_table

#: Trace replicates per cell in panel (a).
FIG9A_SEEDS = 2

COMBOS = ["st", "st+s", "st+s+b", "st+s+b+d", "st+s+b+d+m", "pythia"]
COMBO_TRACES = ["spec06/lbm-1", "ligra/cc-1", "parsec/canneal-1", "spec06/mcf-1"]


def test_fig09a_per_suite(session, benchmark):
    def run():
        return session.run(
            session.experiment("fig9a")
            .with_traces(*all_sample_traces())
            .with_prefetchers(*COMPETITORS)
            .with_seeds(FIG9A_SEEDS)
        )

    results = once(benchmark, run)
    rollup = results.rollup("suite", "prefetcher")

    def seed_spread(subset):
        """Mean across the suite's workloads of the per-workload
        seed-replicate std — cross-workload heterogeneity must not leak
        into the error bar, only seed noise."""
        stds = [group.std() for group in subset.group("trace_name").values()]
        return sum(stds) / len(stds)

    rows = [
        (
            suite,
            *[
                f"{rollup[suite][pf]:.3f} "
                f"±{seed_spread(by_suite.filter(prefetcher=pf)):.3f}"
                for pf in COMPETITORS
            ],
        )
        for suite, by_suite in results.group("suite").items()
    ]
    print(
        f"\nFig 9a: geomean speedup per suite "
        f"(1C, {FIG9A_SEEDS} seeds, ± mean per-workload seed std)"
    )
    print(format_table(["suite", *COMPETITORS], rows))

    overall = results.rollup("prefetcher")
    print("overall:", {pf: round(s, 3) for pf, s in overall.items()})
    # Sanity: Pythia improves over no-prefetching on aggregate, and every
    # record carries the seed it was drawn from.
    assert overall["pythia"] > 1.0
    assert {r.seed for r in results} == set(range(1, FIG9A_SEEDS + 1))


def test_fig09b_combinations(session):
    results = session.run(
        session.experiment("fig9b")
        .with_traces(*COMBO_TRACES)
        .with_prefetchers(*COMBOS)
    )
    rollup = results.rollup("prefetcher")
    rows = [(pf, f"{rollup[pf]:.3f}") for pf in COMBOS]
    print("\nFig 9b: Pythia vs prefetcher combinations (1C)")
    print(format_table(["scheme", "geomean speedup"], rows))

    # Paper shape: stacking prefetchers stacks overpredictions — the
    # full combo must overpredict more than Pythia on these traces.
    by = {(r.trace_name, r.prefetcher): r for r in results}
    combo_over = sum(by[(t, "st+s+b+d+m")].overprediction for t in COMBO_TRACES)
    pythia_over = sum(by[(t, "pythia")].overprediction for t in COMBO_TRACES)
    assert pythia_over < combo_over
