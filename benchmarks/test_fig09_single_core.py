"""Fig 9: single-core performance per suite, and prefetcher combinations.

Panel (a): geomean speedup per workload suite for SPP/Bingo/MLOP/Pythia.
Panel (b): Pythia against cumulative combinations Stride, Stride+SPP, …
— the paper's demonstration that multi-feature learning beats bolting
single-feature prefetchers together (combined coverage also combines
overpredictions).
"""

from conftest import COMPETITORS, all_sample_traces, once
from repro.harness.rollup import format_table

COMBOS = ["st", "st+s", "st+s+b", "st+s+b+d", "st+s+b+d+m", "pythia"]
COMBO_TRACES = ["spec06/lbm-1", "ligra/cc-1", "parsec/canneal-1", "spec06/mcf-1"]


def test_fig09a_per_suite(session, benchmark):
    def run():
        return session.run(
            session.experiment("fig9a")
            .with_traces(*all_sample_traces())
            .with_prefetchers(*COMPETITORS)
        )

    results = once(benchmark, run)
    rollup = results.rollup("suite", "prefetcher")
    rows = [
        (suite, *[f"{rollup[suite][pf]:.3f}" for pf in COMPETITORS])
        for suite in rollup
    ]
    print("\nFig 9a: geomean speedup per suite (1C)")
    print(format_table(["suite", *COMPETITORS], rows))

    overall = results.rollup("prefetcher")
    print("overall:", {pf: round(s, 3) for pf, s in overall.items()})
    # Sanity: Pythia improves over no-prefetching on aggregate.
    assert overall["pythia"] > 1.0


def test_fig09b_combinations(session):
    results = session.run(
        session.experiment("fig9b")
        .with_traces(*COMBO_TRACES)
        .with_prefetchers(*COMBOS)
    )
    rollup = results.rollup("prefetcher")
    rows = [(pf, f"{rollup[pf]:.3f}") for pf in COMBOS]
    print("\nFig 9b: Pythia vs prefetcher combinations (1C)")
    print(format_table(["scheme", "geomean speedup"], rows))

    # Paper shape: stacking prefetchers stacks overpredictions — the
    # full combo must overpredict more than Pythia on these traces.
    by = {(r.trace_name, r.prefetcher): r for r in results}
    combo_over = sum(by[(t, "st+s+b+d+m")].overprediction for t in COMBO_TRACES)
    pythia_over = sum(by[(t, "pythia")].overprediction for t in COMBO_TRACES)
    assert pythia_over < combo_over
