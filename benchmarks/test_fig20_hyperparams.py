"""Fig 20 (appendix B.3): sensitivity to the exploration rate ε and the
learning rate α — each axis one declarative grid search
(:meth:`repro.api.Session.search`), so the points fan out through the
bench session's executor and share its cached baselines.
"""

from conftest import once
from repro.harness.rollup import format_table

TRACES = ["spec06/gemsfdtd-1", "spec06/lbm-1"]
EPSILONS = [0.005, 0.1, 0.5]
ALPHAS = [0.001, 0.02, 0.2]


def _sweep(session, name, **axis):
    result = (
        session.search(name)
        .over(**axis)
        .with_prefetcher("pythia")
        .phase1(TRACES)
        .run()
    )
    (param,) = axis
    return {entry.point[param]: entry.score for entry in result}


def test_fig20a_epsilon_sensitivity(session, benchmark):
    def run():
        return _sweep(session, "fig20a", epsilon=EPSILONS)

    scores = once(benchmark, run)
    rows = [(eps, f"{scores[eps]:.3f}") for eps in EPSILONS]
    print("\nFig 20a: sensitivity to exploration rate")
    print(format_table(["epsilon", "geomean speedup"], rows))
    # Paper shape: heavy exploration hurts — ε=0.5 must not be the best.
    assert scores[0.5] <= max(scores[e] for e in EPSILONS[:2]) + 0.01


def test_fig20b_alpha_sensitivity(session, benchmark):
    def run():
        return _sweep(session, "fig20b", alpha=ALPHAS)

    scores = once(benchmark, run)
    rows = [(alpha, f"{scores[alpha]:.3f}") for alpha in ALPHAS]
    print("\nFig 20b: sensitivity to learning rate")
    print(format_table(["alpha", "geomean speedup"], rows))
    # Paper shape: the tuned mid value is at least as good as the extremes.
    assert scores[0.02] >= min(scores[a] for a in ALPHAS) - 0.01
