"""Fig 20 (appendix B.3): sensitivity to the exploration rate ε and the
learning rate α."""

import dataclasses

from conftest import once
from repro.core import Pythia, PythiaConfig
from repro.harness.rollup import format_table
from repro.sim.config import baseline_single_core
from repro.sim.metrics import geomean, speedup
from repro.sim.system import simulate

TRACES = ["spec06/gemsfdtd-1", "spec06/lbm-1"]
EPSILONS = [0.005, 0.1, 0.5]
ALPHAS = [0.001, 0.02, 0.2]


def _score(runner, **overrides):
    config = dataclasses.replace(PythiaConfig(), **overrides)
    speeds = []
    for name in TRACES:
        trace = runner.trace(name)
        base = runner.baseline(name, baseline_single_core())
        result = simulate(trace, baseline_single_core(), Pythia(config),
                          warmup_fraction=runner.warmup_fraction)
        speeds.append(speedup(result, base))
    return geomean(speeds)


def test_fig20a_epsilon_sensitivity(runner, benchmark):
    def run():
        return {eps: _score(runner, epsilon=eps) for eps in EPSILONS}

    scores = once(benchmark, run)
    rows = [(eps, f"{scores[eps]:.3f}") for eps in EPSILONS]
    print("\nFig 20a: sensitivity to exploration rate")
    print(format_table(["epsilon", "geomean speedup"], rows))
    # Paper shape: heavy exploration hurts — ε=0.5 must not be the best.
    assert scores[0.5] <= max(scores[e] for e in EPSILONS[:2]) + 0.01


def test_fig20b_alpha_sensitivity(runner, benchmark):
    def run():
        return {alpha: _score(runner, alpha=alpha) for alpha in ALPHAS}

    scores = once(benchmark, run)
    rows = [(alpha, f"{scores[alpha]:.3f}") for alpha in ALPHAS]
    print("\nFig 20b: sensitivity to learning rate")
    print(format_table(["alpha", "geomean speedup"], rows))
    # Paper shape: the tuned mid value is at least as good as the extremes.
    assert scores[0.02] >= min(scores[a] for a in ALPHAS) - 0.01
