"""Table 8: area and power overhead vs commercial Skylake SKUs."""

import dataclasses

from conftest import once
from repro.core import PythiaConfig
from repro.harness.rollup import format_table
from repro.hwmodel import overhead_table, synthesize


def test_table08_area_power(benchmark):
    config = dataclasses.replace(PythiaConfig(), eq_size=256)

    def run():
        return synthesize(config), overhead_table(config)

    estimate, rows = once(benchmark, run)
    print(
        f"\nTable 8: Pythia area {estimate.area_mm2:.2f} mm^2/core, "
        f"power {estimate.power_mw:.2f} mW/core, "
        f"prediction latency {estimate.prediction_latency_cycles} cycles"
    )
    printable = [
        (sku, f"{area:.2f}%", f"{power:.2f}%") for sku, area, power in rows
    ]
    print(format_table(["processor", "area overhead", "power overhead"], printable))

    # Paper values: 0.33 mm^2, 55.11 mW; 1.03% area / 0.37% power on the
    # 4-core desktop SKU.
    assert abs(estimate.area_mm2 - 0.33) < 1e-6
    assert abs(estimate.power_mw - 55.11) < 1e-6
    by_sku = {sku: (a, p) for sku, a, p in rows}
    area4, power4 = by_sku["Skylake D-2123IT (4-core, 60W)"]
    assert abs(area4 - 1.03) < 0.02
    assert abs(power4 - 0.37) < 0.02
